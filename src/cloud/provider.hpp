/**
 * @file
 * CloudProvider: the acquire/release API a tenant programs against.
 *
 * This is the simulated stand-in for the GCE/EC2 control plane:
 *  - reserveDedicated() builds the reserved pool — dedicated full-server
 *    instances, available immediately (no spin-up), limited to residual
 *    network interference;
 *  - acquire() requests an on-demand instance: full-server shapes get a
 *    dedicated machine, smaller shapes are placed as slices of shared
 *    machines carrying external tenant load; the instance becomes usable
 *    after a sampled spin-up delay, signalled through a callback;
 *  - release() returns an instance and stops its on-demand meter.
 */

#ifndef HCLOUD_CLOUD_PROVIDER_HPP
#define HCLOUD_CLOUD_PROVIDER_HPP

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/external_load.hpp"
#include "cloud/instance.hpp"
#include "cloud/instance_type.hpp"
#include "cloud/machine.hpp"
#include "cloud/provider_profile.hpp"
#include "cloud/spin_up.hpp"
#include "cloud/spot_market.hpp"
#include "obs/tracer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hcloud::cloud {

/** Invoked when an acquired instance finishes spinning up. */
using ReadyCallback = std::function<void(Instance*)>;

/** Invoked when the market reclaims a spot instance. */
using InterruptCallback = std::function<void(Instance*)>;

/**
 * Simulated cloud provider control plane.
 */
class CloudProvider
{
  public:
    /**
     * @param simulator DES kernel (not owned).
     * @param profile Provider variability profile.
     * @param loadConfig External-load parameters for shared machines.
     * @param rng Root random stream for this provider.
     */
    CloudProvider(sim::Simulator& simulator, ProviderProfile profile,
                  ExternalLoadConfig loadConfig, sim::Rng rng);

    const ProviderProfile& profile() const { return profile_; }
    SpinUpModel& spinUp() { return spinUp_; }
    BillingMeter& billing() { return billing_; }
    const BillingMeter& billing() const { return billing_; }

    /**
     * Build the reserved pool: @p count dedicated instances of @p type,
     * ready at the current time with no spin-up. Registers the pool with
     * the billing meter. May be called once per run.
     */
    std::vector<Instance*> reserveDedicated(const InstanceType& type,
                                            int count);

    /**
     * Request an on-demand instance.
     *
     * @param type Shape to acquire.
     * @param onReady Invoked (from the event loop) once the instance is
     *        Running. Not invoked if the instance is released first.
     * @return The instance, in SpinningUp state.
     */
    Instance* acquire(const InstanceType& type, ReadyCallback onReady);

    /** Release an instance back to the provider. */
    void release(Instance* instance);

    /** The spot market (created lazily with default parameters). */
    SpotMarket& spotMarket();

    /** The spot market if one has been created, else nullptr — read-only
     *  observers must not trigger the lazy creation. */
    const SpotMarket* spotMarketIfCreated() const
    {
        return spotMarket_.get();
    }

    /**
     * Request a spot instance at the given bid ($/hour). Behaves like
     * acquire(), but the instance is billed at the market price locked
     * at acquisition and is interrupted — residents evicted via
     * @p onInterrupt, then released — whenever the market price rises
     * above the bid (checked every kSpotCheckPeriod).
     */
    Instance* acquireSpot(const InstanceType& type, double bidHourly,
                          ReadyCallback onReady,
                          InterruptCallback onInterrupt);

    /** How often spot bids are compared against the market. */
    static constexpr sim::Duration kSpotCheckPeriod = 60.0;

    /** All instances ever created (stable addresses). */
    const std::deque<std::unique_ptr<Instance>>& instances() const
    {
        return instances_;
    }

    /** All machines ever created. */
    const std::deque<std::unique_ptr<Machine>>& machines() const
    {
        return machines_;
    }

    /** Replace the external-load config used for future shared machines. */
    void setExternalLoadConfig(const ExternalLoadConfig& config)
    {
        loadConfig_ = config;
    }

    /**
     * Emit instance-lifecycle and spot-market trace events through
     * @p tracer (not owned; may be null to disable).
     */
    void setTracer(obs::Tracer* tracer);

  private:
    Machine* newMachine(bool shared);

    /** Chain of periodic interruption checks for one spot instance. */
    void scheduleSpotCheck(Instance* instance,
                           InterruptCallback onInterrupt);

    /** Shared machine with room for @p vcpus (first fit), or a new one. */
    Machine* placeSlice(int vcpus);

    sim::Simulator& simulator_;
    ProviderProfile profile_;
    ExternalLoadConfig loadConfig_;
    sim::Rng rng_;
    SpinUpModel spinUp_;
    BillingMeter billing_;
    std::unique_ptr<SpotMarket> spotMarket_;
    obs::Tracer* tracer_ = nullptr;

    std::deque<std::unique_ptr<Machine>> machines_;
    std::deque<std::unique_ptr<Instance>> instances_;
    std::vector<Machine*> sharedMachines_;

    sim::InstanceId nextInstanceId_ = 1;
    sim::MachineId nextMachineId_ = 1;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_PROVIDER_HPP
