#include "cloud/spin_up.hpp"

#include <algorithm>

namespace hcloud::cloud {

SpinUpModel::SpinUpModel(const ProviderProfile& profile, sim::Rng rng)
    : medianCurve_(profile.spinUpMedian),
      tailRatio_(profile.spinUpTailRatio),
      rng_(rng)
{
}

sim::Duration
SpinUpModel::median(const InstanceType& type) const
{
    if (fixed_)
        return *fixed_;
    const int v = type.vcpus;
    if (v >= 0 && v <= kMaxVcpus) {
        if (!medianValid_[v]) {
            medianCache_[v] = medianCurve_.at(v) * scale_;
            medianValid_[v] = true;
        }
        return medianCache_[v];
    }
    return medianCurve_.at(v) * scale_;
}

sim::Duration
SpinUpModel::sample(const InstanceType& type)
{
    if (fixed_)
        return *fixed_;
    const double med = median(type);
    if (med <= 0.0)
        return 0.0;
    // Mixture matching the paper's observation: spin-up is typically
    // 12-19 s, but the 95th percentile reaches ~2 minutes. Most draws
    // cluster tightly around the median; a minority are stragglers with
    // an exponential tail.
    constexpr double kStragglerProb = 0.12;
    if (!rng_.bernoulli(kStragglerProb))
        return std::max(1.0, rng_.normal(med, 0.15 * med));
    return 1.5 * med + rng_.exponential(0.8 * med * tailRatio_);
}

} // namespace hcloud::cloud
