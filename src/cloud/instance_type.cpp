#include "cloud/instance_type.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcloud::cloud {

const char*
toString(Family family)
{
    switch (family) {
      case Family::Micro:
        return "micro";
      case Family::Standard:
        return "standard";
      case Family::HighMem:
        return "highmem";
      case Family::HighCpu:
        return "highcpu";
    }
    return "?";
}

const InstanceTypeCatalog&
InstanceTypeCatalog::defaultCatalog()
{
    // 2016-era GCE-like list: n1-standard at ~$0.05 per vCPU-hour,
    // highmem ~25% dearer, highcpu ~25% cheaper, micro heavily discounted.
    static const InstanceTypeCatalog catalog({
        {"micro", Family::Micro, 1, 0.6, 0.009},
        {"st1", Family::Standard, 1, 3.75, 0.050},
        {"st2", Family::Standard, 2, 7.5, 0.100},
        {"st4", Family::Standard, 4, 15.0, 0.200},
        {"st8", Family::Standard, 8, 30.0, 0.400},
        {"st16", Family::Standard, 16, 60.0, 0.800},
        {"hm2", Family::HighMem, 2, 13.0, 0.126},
        {"hm4", Family::HighMem, 4, 26.0, 0.252},
        {"hm8", Family::HighMem, 8, 52.0, 0.504},
        {"m16", Family::HighMem, 16, 104.0, 1.008},
        {"hc2", Family::HighCpu, 2, 1.8, 0.076},
        {"hc4", Family::HighCpu, 4, 3.6, 0.152},
        {"hc8", Family::HighCpu, 8, 7.2, 0.304},
        {"hc16", Family::HighCpu, 16, 14.4, 0.608},
    });
    return catalog;
}

InstanceTypeCatalog::InstanceTypeCatalog(std::vector<InstanceType> types)
    : types_(std::move(types))
{
    std::stable_sort(types_.begin(), types_.end(),
                     [](const InstanceType& a, const InstanceType& b) {
                         if (a.vcpus != b.vcpus)
                             return a.vcpus < b.vcpus;
                         return a.onDemandHourly < b.onDemandHourly;
                     });
}

const InstanceType&
InstanceTypeCatalog::byName(const std::string& name) const
{
    for (const auto& t : types_) {
        if (t.name == name)
            return t;
    }
    throw std::out_of_range("unknown instance type: " + name);
}

const InstanceType*
InstanceTypeCatalog::smallestFitting(double cores, double memoryGb,
                                     std::optional<Family> family) const
{
    const InstanceType* best = nullptr;
    for (const auto& t : types_) {
        if (family && t.family != *family)
            continue;
        if (t.vcpus + 1e-9 < cores || t.memoryGb + 1e-9 < memoryGb)
            continue;
        if (!best || t.onDemandHourly < best->onDemandHourly)
            best = &t;
    }
    return best;
}

const InstanceType&
InstanceTypeCatalog::largest(Family family) const
{
    const InstanceType* best = nullptr;
    for (const auto& t : types_) {
        if (t.family != family)
            continue;
        if (!best || t.vcpus > best->vcpus)
            best = &t;
    }
    if (!best)
        throw std::out_of_range("no instance in requested family");
    return *best;
}

} // namespace hcloud::cloud
