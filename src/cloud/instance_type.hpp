/**
 * @file
 * Cloud instance types and the provider catalog.
 *
 * The catalog mirrors the ladder used in the paper's Figures 1-2: a 1-vCPU
 * micro instance, 1/2/4/8-vCPU standard instances, and 16-vCPU instances in
 * the standard, memory-optimized (highmem) and compute-optimized (highcpu)
 * families. Hourly prices follow 2016-era GCE list prices so that cost
 * figures land in the paper's regime.
 */

#ifndef HCLOUD_CLOUD_INSTANCE_TYPE_HPP
#define HCLOUD_CLOUD_INSTANCE_TYPE_HPP

#include <optional>
#include <string>
#include <vector>

namespace hcloud::cloud {

/** Instance family, mirroring standard/memory/compute-optimized offerings. */
enum class Family
{
    Micro,
    Standard,
    HighMem,
    HighCpu,
};

/** Human-readable family name. */
const char* toString(Family family);

/**
 * A purchasable instance shape.
 */
struct InstanceType
{
    /** Catalog name, e.g. "st8" or "m16". */
    std::string name;
    Family family = Family::Standard;
    /** Virtual CPU count; also the core capacity delivered at quality 1. */
    int vcpus = 1;
    /** Memory allocation in GiB. */
    double memoryGb = 0.0;
    /** On-demand list price in $ per instance-hour. */
    double onDemandHourly = 0.0;

    /** True for shapes that occupy a whole physical server. */
    bool fullServer() const { return vcpus >= 16; }
};

/**
 * The set of instance shapes a provider sells.
 *
 * Shapes are kept sorted by vCPU count (then by price) so "smallest
 * satisfying" queries are simple linear scans.
 */
class InstanceTypeCatalog
{
  public:
    /** Default catalog used throughout the evaluation (GCE-like). */
    static const InstanceTypeCatalog& defaultCatalog();

    explicit InstanceTypeCatalog(std::vector<InstanceType> types);

    const std::vector<InstanceType>& types() const { return types_; }

    /** Look up a shape by catalog name; throws std::out_of_range. */
    const InstanceType& byName(const std::string& name) const;

    /**
     * Cheapest shape with at least @p cores vCPUs and @p memoryGb memory.
     *
     * @param family Restrict to one family when provided.
     * @return nullptr when nothing fits (demand exceeds the largest shape).
     */
    const InstanceType* smallestFitting(
        double cores, double memoryGb,
        std::optional<Family> family = std::nullopt) const;

    /** The largest (full-server) shape in the given family. */
    const InstanceType& largest(Family family = Family::Standard) const;

  private:
    std::vector<InstanceType> types_;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_INSTANCE_TYPE_HPP
