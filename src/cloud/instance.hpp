/**
 * @file
 * Instance: an acquired VM and its quality model.
 *
 * Every instance carries the two variability components of Figures 1-2:
 *  - a *spatial* base quality drawn once at creation (which physical
 *    server / neighbourhood you landed on), and
 *  - a *temporal* Ornstein–Uhlenbeck noise component.
 *
 * Delivered capacity for a job is
 *     cores * effectiveQuality(t, sensitivity)
 * where effective quality discounts the base quality by the job's
 * sensitivity-weighted interference pressure (external tenants plus
 * co-resident jobs of our own).
 */

#ifndef HCLOUD_CLOUD_INSTANCE_HPP
#define HCLOUD_CLOUD_INSTANCE_HPP

#include <cstdint>
#include <map>
#include <optional>

#include "cloud/instance_type.hpp"
#include "cloud/machine.hpp"
#include "cloud/provider_profile.hpp"
#include "sim/ou_process.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/** Lifecycle of an instance. */
enum class InstanceState
{
    SpinningUp, ///< acquire() issued; not yet usable.
    Running,    ///< usable (may be idle or hosting jobs).
    Released,   ///< given back to the provider.
};

/**
 * A job resident on an instance, as the cloud layer sees it: an id, a core
 * allocation, and a scalar pressure it exerts on shared resources.
 */
struct Resident
{
    double cores = 0.0;
    /** Average pressure this job puts on shared resources, in [0, 1]. */
    double pressure = 0.0;
};

/**
 * An acquired VM.
 */
class Instance
{
  public:
    /**
     * Construct; called by CloudProvider only.
     *
     * @param id Unique id.
     * @param type Shape.
     * @param profile Provider variability profile.
     * @param host Backing physical machine (owns external load).
     * @param reserved True for reserved-pool members.
     * @param rng Stream for quality draws.
     * @param now Acquisition time.
     */
    Instance(sim::InstanceId id, const InstanceType& type,
             const ProviderProfile& profile, Machine* host, bool reserved,
             sim::Rng rng, sim::Time now);

    sim::InstanceId id() const { return id_; }
    const InstanceType& type() const { return *type_; }
    bool reserved() const { return reserved_; }
    Machine* host() const { return host_; }

    InstanceState state() const { return state_; }
    void setState(InstanceState s) { state_ = s; }

    sim::Time acquiredAt() const { return acquiredAt_; }
    sim::Time availableAt() const { return availableAt_; }
    void setAvailableAt(sim::Time t) { availableAt_ = t; }
    sim::Time releasedAt() const { return releasedAt_; }
    void setReleasedAt(sim::Time t) { releasedAt_ = t; }

    /** True for instances whose platform kills workloads (EC2 micro). */
    bool faulty() const { return faulty_; }
    void markFaulty() { faulty_ = true; }

    /** True for spot instances (interruptible, market-priced). */
    bool spot() const { return spot_; }
    void markSpot(double bidHourly)
    {
        spot_ = true;
        spotBid_ = bidHourly;
    }
    /** The bid this spot instance was acquired at ($/hour). */
    double spotBid() const { return spotBid_; }

    /** Spatial base quality in [0, 1], fixed for the instance lifetime. */
    double spatialQuality() const { return spatialQuality_; }

    /**
     * Base quality at time @p t: spatial component plus temporal noise,
     * clamped to [0.02, 1].
     *
     * Tick-coherent: memoized per exact @p t. The temporal OU process is
     * idempotent at fixed t (the RNG draw happens only when the clock
     * advances), so repeated same-tick callers get the cached value with
     * identical bits and identical RNG state.
     */
    double baseQuality(sim::Time t);

    /**
     * Sensitivity-weighted interference pressure a job would feel here at
     * time @p t: external-tenant pressure plus pressure from co-resident
     * jobs other than @p self.
     *
     * Tick-coherent: memoized per exact (t, self, resident set). Any
     * resident add/resize/remove bumps an internal version, so mid-tick
     * placement changes invalidate the cache and the O(residents) sum is
     * recomputed with the original arithmetic (same bits as uncached).
     */
    double interferencePressure(sim::Time t,
                                std::optional<sim::JobId> self);

    /**
     * Capacity multiplier for a job with the given interference
     * sensitivity, in [0.02, 1]. Memoized per exact
     * (t, sensitivity, self, resident set), like interferencePressure.
     */
    double effectiveQuality(sim::Time t, double sensitivity,
                            std::optional<sim::JobId> self);

    /**
     * Last materialized quality without advancing anything: the memoized
     * effective quality when one has been computed, else the memoized
     * base quality, else the spatial component alone. Read-only — safe
     * for samplers (obs::Timeline) that must not move an RNG draw.
     */
    double observedQuality() const
    {
        if (effQualityT_ >= 0.0)
            return effQualityCached_;
        if (baseQualityT_ >= 0.0)
            return baseQualityCached_;
        return spatialQuality_;
    }

    // --- Occupancy -------------------------------------------------------

    double coresTotal() const { return type_->vcpus; }
    double coresUsed() const { return coresUsed_; }
    double coresFree() const { return coresTotal() - coresUsed_; }
    bool idle() const { return residents_.empty(); }
    std::size_t residentCount() const { return residents_.size(); }

    /** Time the instance last became idle (kTimeNever if occupied). */
    sim::Time idleSince() const { return idleSince_; }

    /** Place a job. @return false if the cores do not fit. */
    bool addResident(sim::JobId job, const Resident& r, sim::Time now);

    /** Update a resident's core allocation in place. */
    void resizeResident(sim::JobId job, double cores);

    /** Remove a job (no-op if absent). */
    void removeResident(sim::JobId job, sim::Time now);

    const std::map<sim::JobId, Resident>& residents() const
    {
        return residents_;
    }

  private:
    sim::InstanceId id_;
    const InstanceType* type_;
    Machine* host_;
    bool reserved_;
    bool faulty_ = false;
    bool spot_ = false;
    double spotBid_ = 0.0;
    InstanceState state_ = InstanceState::SpinningUp;

    sim::Time acquiredAt_;
    sim::Time availableAt_ = sim::kTimeNever;
    sim::Time releasedAt_ = sim::kTimeNever;
    sim::Time idleSince_;

    double spatialQuality_;
    double exposure_;
    double networkExposure_;
    sim::OuProcess temporal_;

    double coresUsed_ = 0.0;
    std::map<sim::JobId, Resident> residents_;

    // --- Tick-coherent memoization ---------------------------------------
    // Caches are keyed on the exact query time (plus self/sensitivity and
    // the resident-set version where those are inputs); they only skip
    // *repeat* evaluations within one tick and never change which tick
    // first advances the underlying stochastic processes. Any new
    // time-dependent model input must join the key or bump the version.
    /** Bumped by addResident/resizeResident/removeResident. */
    std::uint64_t residentsVersion_ = 0;
    sim::Time baseQualityT_ = -1.0;
    double baseQualityCached_ = 0.0;
    sim::Time pressureT_ = -1.0;
    std::uint64_t pressureVersion_ = 0;
    std::optional<sim::JobId> pressureSelf_;
    double pressureCached_ = 0.0;
    sim::Time effQualityT_ = -1.0;
    std::uint64_t effQualityVersion_ = 0;
    double effQualitySens_ = 0.0;
    std::optional<sim::JobId> effQualitySelf_;
    double effQualityCached_ = 0.0;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_INSTANCE_HPP
