/**
 * @file
 * Spot-instance market model (Section 5.5 extension).
 *
 * The paper defers spot instances to future work: "unallocated resources
 * that cloud providers make available through a bidding interface...
 * may be terminated at any point if the market price exceeds the bidding
 * price". This module implements that market: a mean-reverting price
 * process per instance-size class (calibrated loosely to EC2 spot
 * history: prices hover around ~30-40% of on-demand with occasional
 * spikes above it), plus the bid/interruption mechanics strategies
 * program against.
 */

#ifndef HCLOUD_CLOUD_SPOT_MARKET_HPP
#define HCLOUD_CLOUD_SPOT_MARKET_HPP

#include <map>
#include <string>

#include "cloud/instance_type.hpp"
#include "obs/tracer.hpp"
#include "sim/ou_process.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace hcloud::cloud {

/** Spot-market parameters. */
struct SpotMarketConfig
{
    /** Long-run mean price as a fraction of the on-demand rate. */
    double meanDiscount = 0.35;
    /** Stationary stddev of the price fraction. */
    double stddev = 0.10;
    /** Price decorrelation time. */
    sim::Duration relaxation = 1200.0;
    /** Mean time between demand spikes (0 disables spikes). */
    sim::Duration spikeInterval = 2400.0;
    /** Price-fraction jump during a spike (often above on-demand). */
    double spikeMagnitude = 0.9;
    /** Spike length. */
    sim::Duration spikeDuration = 180.0;
    /** Floor/ceiling on the price fraction. */
    double minFraction = 0.08;
    double maxFraction = 1.50;
};

/**
 * Per-size-class spot price processes.
 */
class SpotMarket
{
  public:
    SpotMarket(SpotMarketConfig config, sim::Rng rng);

    /** Current spot price of @p type in $/hour. */
    double price(const InstanceType& type, sim::Time t);

    /** Current price as a fraction of the on-demand rate. */
    double priceFraction(const InstanceType& type, sim::Time t);

    /**
     * True when an instance bid at @p bidHourly would be interrupted at
     * time @p t (market price exceeds the bid).
     */
    bool wouldInterrupt(const InstanceType& type, double bidHourly,
                        sim::Time t);

    /**
     * Last materialized price fraction for @p type's size class without
     * advancing the price process or the spike schedule (the configured
     * mean discount before the class's first query). Ignores in-flight
     * spikes — those are materialized lazily by priceFraction(), and a
     * read-only observer cannot materialize one. Safe for
     * perturbation-free samplers (obs::Timeline).
     */
    double lastPriceFraction(const InstanceType& type) const;

    const SpotMarketConfig& config() const { return config_; }

    /** Emit MarketSpike trace events through @p tracer (may be null). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  private:
    struct ClassState
    {
        sim::OuProcess process;
        sim::Rng spikeRng;
        sim::Time nextSpikeStart;
        sim::Time spikeEnd = -1.0;
    };

    /** Markets clear per size class (vCPU count), not per exact shape. */
    ClassState& stateFor(const InstanceType& type);

    SpotMarketConfig config_;
    sim::Rng rng_;
    std::map<int, ClassState> classes_;
    obs::Tracer* tracer_ = nullptr;
};

} // namespace hcloud::cloud

#endif // HCLOUD_CLOUD_SPOT_MARKET_HPP
