#include "cloud/provider.hpp"

#include <cassert>

namespace hcloud::cloud {

CloudProvider::CloudProvider(sim::Simulator& simulator,
                             ProviderProfile profile,
                             ExternalLoadConfig loadConfig, sim::Rng rng)
    : simulator_(simulator),
      profile_(std::move(profile)),
      loadConfig_(loadConfig),
      rng_(rng),
      spinUp_(profile_, rng.child("spin_up"))
{
}

void
CloudProvider::setTracer(obs::Tracer* tracer)
{
    tracer_ = tracer;
    if (spotMarket_)
        spotMarket_->setTracer(tracer);
}

Machine*
CloudProvider::newMachine(bool shared)
{
    const sim::MachineId id = nextMachineId_++;
    machines_.push_back(std::make_unique<Machine>(
        id, shared, loadConfig_, rng_.child("machine").child(id)));
    Machine* m = machines_.back().get();
    if (shared)
        sharedMachines_.push_back(m);
    return m;
}

Machine*
CloudProvider::placeSlice(int vcpus)
{
    for (Machine* m : sharedMachines_) {
        if (m->freeVcpus() >= vcpus)
            return m;
    }
    return newMachine(/*shared=*/true);
}

std::vector<Instance*>
CloudProvider::reserveDedicated(const InstanceType& type, int count)
{
    assert(billing_.reservedCount() == 0 && "reserved pool already built");
    std::vector<Instance*> pool;
    pool.reserve(count);
    for (int i = 0; i < count; ++i) {
        Machine* host = newMachine(/*shared=*/false);
        host->allocate(type.vcpus);
        const sim::InstanceId id = nextInstanceId_++;
        instances_.push_back(std::make_unique<Instance>(
            id, type, profile_, host, /*reserved=*/true,
            rng_.child("instance").child(id), simulator_.now()));
        Instance* inst = instances_.back().get();
        inst->setState(InstanceState::Running);
        inst->setAvailableAt(simulator_.now());
        if (tracer_ && tracer_->enabled()) {
            tracer_->instance(obs::EventKind::InstanceReady,
                              simulator_.now(), id,
                              inst->baseQuality(simulator_.now()),
                              type.name);
        }
        pool.push_back(inst);
    }
    billing_.setReservedPool(type, count);
    return pool;
}

Instance*
CloudProvider::acquire(const InstanceType& type, ReadyCallback onReady)
{
    Machine* host;
    if (type.fullServer()) {
        host = newMachine(/*shared=*/false);
    } else {
        host = placeSlice(type.vcpus);
    }
    const bool ok = host->allocate(type.vcpus);
    assert(ok && "slice placement must fit");
    (void)ok;

    const sim::InstanceId id = nextInstanceId_++;
    instances_.push_back(std::make_unique<Instance>(
        id, type, profile_, host, /*reserved=*/false,
        rng_.child("instance").child(id), simulator_.now()));
    Instance* inst = instances_.back().get();

    const sim::Duration delay = spinUp_.sample(type);
    const sim::Time ready = simulator_.now() + delay;
    inst->setAvailableAt(ready);
    billing_.onDemandAcquired(id, type, simulator_.now());
    if (tracer_ && tracer_->enabled()) {
        tracer_->instance(obs::EventKind::InstanceRequest,
                          simulator_.now(), id, delay, type.name);
    }

    simulator_.at(ready, [this, inst, cb = std::move(onReady)]() {
        if (inst->state() != InstanceState::SpinningUp)
            return; // released while spinning up
        inst->setState(InstanceState::Running);
        if (tracer_ && tracer_->enabled()) {
            tracer_->instance(obs::EventKind::InstanceReady,
                              simulator_.now(), inst->id(),
                              inst->baseQuality(simulator_.now()),
                              inst->type().name);
        }
        if (cb)
            cb(inst);
    });
    return inst;
}

SpotMarket&
CloudProvider::spotMarket()
{
    if (!spotMarket_) {
        spotMarket_ = std::make_unique<SpotMarket>(
            SpotMarketConfig{}, rng_.child("spot-market"));
        spotMarket_->setTracer(tracer_);
    }
    return *spotMarket_;
}

void
CloudProvider::scheduleSpotCheck(Instance* instance,
                                 InterruptCallback onInterrupt)
{
    simulator_.after(kSpotCheckPeriod, [this, instance, onInterrupt]() {
        if (instance->state() == InstanceState::Released)
            return; // chain ends with the instance
        if (spotMarket().wouldInterrupt(instance->type(),
                                        instance->spotBid(),
                                        simulator_.now())) {
            // Market reclaim: the owner evicts residents, then the
            // instance is destroyed.
            if (tracer_ && tracer_->enabled()) {
                tracer_->decision(
                    simulator_.now(),
                    obs::DecisionReason::SpotInterruption, /*job=*/0,
                    instance->id(),
                    spotMarket().price(instance->type(),
                                       simulator_.now()),
                    instance->type().name, obs::Severity::Warn);
            }
            if (onInterrupt)
                onInterrupt(instance);
            if (instance->state() != InstanceState::Released) {
                assert(instance->idle() &&
                       "interrupt handler must evict residents");
                release(instance);
            }
            return;
        }
        scheduleSpotCheck(instance, onInterrupt);
    });
}

Instance*
CloudProvider::acquireSpot(const InstanceType& type, double bidHourly,
                           ReadyCallback onReady,
                           InterruptCallback onInterrupt)
{
    // Spot capacity is drawn from the same physical pool as on-demand;
    // only pricing and the interruption contract differ, so the billing
    // record must be written before acquire() does. Record the locked
    // market fraction first, then create the instance with acquire()'s
    // machinery minus its billing call — easiest is to create and then
    // patch the record, so instead we compute the fraction up front and
    // re-record.
    const double fraction =
        spotMarket().priceFraction(type, simulator_.now());
    Instance* inst = acquire(type, std::move(onReady));
    // Replace the list-price record with the spot-priced one.
    billing_.discardOpen(inst->id());
    billing_.onDemandAcquired(inst->id(), type, simulator_.now(),
                              fraction);
    inst->markSpot(bidHourly);
    scheduleSpotCheck(inst, std::move(onInterrupt));
    return inst;
}

void
CloudProvider::release(Instance* instance)
{
    assert(instance->state() != InstanceState::Released);
    assert(instance->idle() && "cannot release an occupied instance");
    instance->setState(InstanceState::Released);
    instance->setReleasedAt(simulator_.now());
    instance->host()->free(instance->type().vcpus);
    if (!instance->reserved())
        billing_.onDemandReleased(instance->id(), simulator_.now());
    if (tracer_ && tracer_->enabled()) {
        tracer_->instance(obs::EventKind::InstanceRelease,
                          simulator_.now(), instance->id(),
                          simulator_.now() - instance->acquiredAt(),
                          instance->type().name);
    }
}

} // namespace hcloud::cloud
