#include "cloud/external_load.hpp"

#include <algorithm>

namespace hcloud::cloud {

namespace {

/** The OU band maps to roughly 2 stationary standard deviations. */
double
bandToStddev(double band)
{
    return band / 2.0;
}

} // namespace

ExternalLoadModel::ExternalLoadModel(ExternalLoadConfig config, sim::Rng rng)
    : config_(config),
      process_(config.meanUtilization, config.relaxation,
               bandToStddev(config.band), rng.child("ou")),
      burstRng_(rng.child("burst")),
      nextBurstStart_(config.burstInterval > 0.0
                          ? burstRng_.exponential(config.burstInterval)
                          : sim::kTimeNever)
{
}

void
ExternalLoadModel::advanceBursts(sim::Time t)
{
    while (t >= nextBurstStart_) {
        burstEnd_ = nextBurstStart_ + config_.burstDuration;
        nextBurstStart_ = burstEnd_ +
            burstRng_.exponential(config_.burstInterval);
    }
}

double
ExternalLoadModel::utilization(sim::Time t)
{
    double u = process_.advanceTo(t);
    if (config_.burstInterval > 0.0) {
        advanceBursts(t);
        if (t <= burstEnd_)
            u += config_.burstMagnitude;
    }
    return std::clamp(u, 0.0, 1.0);
}

} // namespace hcloud::cloud
