#include "cloud/pricing.hpp"

#include <algorithm>
#include <cmath>

namespace hcloud::cloud {

double
PricingModel::onDemandHourly(const InstanceType& type) const
{
    return type.onDemandHourly;
}

double
PricingModel::reservedEffectiveHourly(const InstanceType& type) const
{
    // Models without reservations price "reserved" usage at list.
    return onDemandHourly(type);
}

double
PricingModel::reservedUpfront(const InstanceType& type) const
{
    return reservedEffectiveHourly(type) * (reservedTerm() / 3600.0);
}

sim::Duration
PricingModel::reservedTerm() const
{
    return sim::days(365.0);
}

double
PricingModel::onDemandCharge(const InstanceType& type, double usageHours,
                             double windowHours) const
{
    (void)windowHours;
    return onDemandHourly(type) * usageHours;
}

AwsStylePricing::AwsStylePricing(double onDemandToReservedRatio)
    : ratio_(std::max(onDemandToReservedRatio, 1e-6))
{
}

std::string
AwsStylePricing::name() const
{
    return "aws-reserved+on-demand";
}

double
AwsStylePricing::reservedEffectiveHourly(const InstanceType& type) const
{
    return onDemandHourly(type) / ratio_;
}

double
AwsStylePricing::reservedUpfront(const InstanceType& type) const
{
    return reservedEffectiveHourly(type) * (reservedTerm() / 3600.0);
}

double
GceSustainedUsePricing::discountMultiplier(double usageFraction)
{
    // Integrate the tier schedule (1.0 / 0.8 / 0.6 / 0.4 per quartile)
    // over [0, usageFraction] and divide by the usage to get the average
    // multiplier actually paid.
    static constexpr double kTier[4] = {1.0, 0.8, 0.6, 0.4};
    const double f = std::clamp(usageFraction, 0.0, 1.0);
    if (f <= 0.0)
        return 1.0;
    double paid = 0.0;
    double covered = 0.0;
    for (int i = 0; i < 4 && covered < f; ++i) {
        const double span = std::min(0.25, f - covered);
        paid += span * kTier[i];
        covered += span;
    }
    return paid / f;
}

double
GceSustainedUsePricing::onDemandCharge(const InstanceType& type,
                                       double usageHours,
                                       double windowHours) const
{
    if (usageHours <= 0.0)
        return 0.0;
    const double window = std::max(windowHours, usageHours);
    const double fraction = usageHours / window;
    return onDemandHourly(type) * usageHours * discountMultiplier(fraction);
}

} // namespace hcloud::cloud
