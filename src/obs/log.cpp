#include "obs/log.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace hcloud::obs {

namespace {

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
unixSeconds()
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char*
toString(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "?";
}

Log::Log(LogConfig config)
    : config_(config), tokens_(config.burst), lastRefillNs_(monotonicNs())
{
}

Log&
Log::instance()
{
    static Log log;
    return log;
}

bool
Log::write(LogLevel level, std::string_view event,
           const std::function<void(JsonWriter&)>& fields)
{
    if (level < config_.minLevel)
        return false;

    std::lock_guard<std::mutex> lock(mutex_);

    std::uint64_t catchUp = 0;
    if (config_.maxPerSec > 0.0 && level < LogLevel::Error) {
        const std::uint64_t now = monotonicNs();
        tokens_ += static_cast<double>(now - lastRefillNs_) * 1e-9 *
                   config_.maxPerSec;
        if (tokens_ > config_.burst)
            tokens_ = config_.burst;
        lastRefillNs_ = now;
        if (tokens_ < 1.0) {
            ++suppressed_;
            return false;
        }
        tokens_ -= 1.0;
    }
    // Any admitted record (including Error, which bypasses the bucket)
    // surfaces what the limiter dropped since the last one.
    catchUp = suppressed_;
    suppressed_ = 0;

    std::FILE* out = stream_ ? stream_ : stderr;
    if (catchUp > 0) {
        JsonWriter note;
        note.beginObject();
        note.field("ts", unixSeconds());
        note.field("level", "warn");
        note.field("event", "log_suppressed");
        note.field("dropped", catchUp);
        note.endObject();
        const std::string& line = note.str();
        std::fwrite(line.data(), 1, line.size(), out);
        std::fputc('\n', out);
        ++written_;
    }

    JsonWriter w;
    w.beginObject();
    w.field("ts", unixSeconds());
    w.field("level", toString(level));
    w.field("event", event);
    if (fields)
        fields(w);
    w.endObject();
    const std::string& line = w.str();
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
    std::fflush(out);
    ++written_;
    return true;
}

void
Log::setStream(std::FILE* stream)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stream_ = stream;
}

void
Log::setMinLevel(LogLevel level)
{
    config_.minLevel = level;
}

std::uint64_t
Log::suppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
}

std::uint64_t
Log::written() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_;
}

} // namespace hcloud::obs
