/**
 * @file
 * ProcessMetrics: thread-safe, process-wide metrics registry.
 *
 * The per-run obs::MetricsRegistry is deliberately single-threaded and
 * scoped to one engine run; ProcessMetrics is its process-lifetime
 * counterpart, built so long sweeps can be watched while they run
 * (exposed over HTTP by obs::MetricsHttpServer in Prometheus text
 * exposition, rendered by obs/prom_text):
 *
 *  - counters and gauges are lock-free atomics (CAS-add doubles, so
 *    fractional quantities such as seconds accumulate exactly like
 *    Prometheus float samples);
 *  - histograms are fixed-bucket (bounded memory for process lifetime)
 *    and mutex-sharded by thread so concurrent observers rarely contend;
 *  - metrics group into labeled families: one family name carries many
 *    series distinguished by label sets, which is how per-run registry
 *    snapshots fold into the process view without cardinality explosions
 *    (`hcloud_run_counter_total{metric="strategy_acquisitions"}`);
 *  - every name is sanitized through sanitizeMetricName() on lookup, so
 *    the exposition page is valid by construction.
 *
 * Publishing is always on — updates are a few nanoseconds and never feed
 * back into the simulation — but nothing is *served* unless a bench opts
 * in with --metrics-port, so determinism contracts and bench numbers are
 * untouched by default.
 */

#ifndef HCLOUD_OBS_PROCESS_METRICS_HPP
#define HCLOUD_OBS_PROCESS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace hcloud::obs {

/** Label set of one series: (name, value) pairs, sorted on lookup. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic float counter (Prometheus counter semantics). */
class ProcessCounter
{
  public:
    void inc(double by = 1.0)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + by,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-write-wins scalar with atomic add (for depth-style gauges that
 *  several pools move up and down concurrently). */
class ProcessGauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double by)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + by,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time view of one histogram (raw per-bucket counts; the
 *  renderer accumulates them into Prometheus `le` cumulative form). */
struct HistogramSnapshot
{
    /** One count per upper bound, plus a final overflow (+Inf) bucket. */
    std::vector<std::uint64_t> bucketCounts;
    std::uint64_t count = 0;
    double sum = 0.0;
};

/** Default exponential bucket ladder (1 ms .. 1000 s, seconds scale). */
std::vector<double> defaultHistogramBounds();

/**
 * Fixed-bucket histogram, mutex-sharded by observing thread: observe()
 * locks only the caller's shard, snapshot() merges all shards.
 */
class ProcessHistogram
{
  public:
    /** @param bounds Ascending upper bounds; empty = default ladder. */
    explicit ProcessHistogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double>& bounds() const { return bounds_; }

    HistogramSnapshot snapshot() const;

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    static constexpr std::size_t kShards = 8;

    Shard& localShard();

    std::vector<double> bounds_;
    std::array<Shard, kShards> shards_;
};

/**
 * Process-wide registry of labeled metric families.
 *
 * Lookup creates on first use and returns references that stay valid for
 * the registry's lifetime (series live behind unique_ptrs), so hot call
 * sites cache the pointer and pay one atomic op per update. A family's
 * kind is fixed by its first lookup; a later lookup of the same name with
 * a different kind is deterministically renamed ("<name>_<kind>") instead
 * of corrupting the exposition page with a duplicate family.
 *
 * instance() is the process-wide registry every subsystem publishes into;
 * tests and benches may construct private instances.
 */
class ProcessMetrics
{
  public:
    ProcessMetrics() = default;
    ProcessMetrics(const ProcessMetrics&) = delete;
    ProcessMetrics& operator=(const ProcessMetrics&) = delete;

    /** The singleton served by --metrics-port. */
    static ProcessMetrics& instance();

    ProcessCounter& counter(std::string_view name,
                            std::string_view help = {},
                            const MetricLabels& labels = {});

    ProcessGauge& gauge(std::string_view name, std::string_view help = {},
                        const MetricLabels& labels = {});

    /** @param bounds Used only when the family is created by this call;
     *  empty = defaultHistogramBounds(). */
    ProcessHistogram& histogram(std::string_view name,
                                std::string_view help = {},
                                const MetricLabels& labels = {},
                                std::vector<double> bounds = {});

    /** One series of a family snapshot. */
    struct SeriesSample
    {
        MetricLabels labels;
        /** Counter/gauge value (unused for histograms). */
        double value = 0.0;
        HistogramSnapshot histogram;
    };

    /** One family of a registry snapshot. */
    struct FamilySample
    {
        std::string name;
        std::string help;
        MetricSample::Kind kind = MetricSample::Kind::Counter;
        /** Histogram upper bounds (empty otherwise). */
        std::vector<double> bounds;
        std::vector<SeriesSample> series;
    };

    /** Every family, sorted by name; series sorted by label signature —
     *  deterministic, and safe to call concurrently with updates. */
    std::vector<FamilySample> snapshot() const;

    /** Total series across all families. */
    std::size_t seriesCount() const;

    /**
     * Retire one series: it disappears from snapshot()/seriesCount()
     * (and thus the exposition page) but its storage is kept on a
     * graveyard for the registry's lifetime, preserving the documented
     * reference-stability contract — a caller still holding the
     * reference keeps a valid (now invisible) series. A fresh lookup of
     * the same (name, labels) creates a new series starting from zero.
     * @return true when the series existed.
     */
    bool remove(std::string_view name, const MetricLabels& labels);

  private:
    struct Series
    {
        MetricLabels labels;
        ProcessCounter counter;
        ProcessGauge gauge;
        std::unique_ptr<ProcessHistogram> histogram;
    };

    struct Family
    {
        MetricSample::Kind kind = MetricSample::Kind::Counter;
        std::string help;
        std::vector<double> bounds;
        std::map<std::string, std::unique_ptr<Series>, std::less<>>
            series;
    };

    Series& lookup(std::string_view name, std::string_view help,
                   const MetricLabels& labels, MetricSample::Kind kind,
                   std::vector<double> bounds);

    mutable std::mutex mutex_;
    std::map<std::string, Family, std::less<>> families_;
    /** Retired series, kept alive for reference stability. */
    std::vector<std::unique_ptr<Series>> retired_;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_PROCESS_METRICS_HPP
