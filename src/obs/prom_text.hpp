/**
 * @file
 * Prometheus text exposition (format version 0.0.4) for ProcessMetrics.
 *
 * The renderer is deliberately a pure function of a registry snapshot:
 * the HTTP server calls it per scrape, benches measure it in isolation
 * (BM_PromTextRender), and tests feed it hand-built registries. Output
 * is deterministic — families sorted by name, series by label
 * signature, numbers through the same shortest-round-trip formatter the
 * JSON artifacts use — with full escaping:
 *
 *  - label values escape `\` -> `\\`, `"` -> `\"` and newline -> `\n`;
 *  - HELP text escapes `\` and newline;
 *  - non-finite values render as the exposition literals `NaN`, `+Inf`
 *    and `-Inf` (the text-format counterpart of the tagged JSON strings
 *    the trace writer uses).
 *
 * An empty registry renders an empty (but valid) page: the format is
 * line-oriented with no required preamble, so zero families mean zero
 * lines.
 */

#ifndef HCLOUD_OBS_PROM_TEXT_HPP
#define HCLOUD_OBS_PROM_TEXT_HPP

#include <string>
#include <string_view>

#include "obs/process_metrics.hpp"

namespace hcloud::obs {

/** @p s with label-value escapes applied (no surrounding quotes). */
std::string promEscapeLabelValue(std::string_view s);

/** @p s with HELP-text escapes applied. */
std::string promEscapeHelp(std::string_view s);

/** Exposition form of @p v: NaN / +Inf / -Inf, else shortest decimal. */
std::string promFormatValue(double v);

/** Render one snapshot (HELP/TYPE headers + series lines). */
std::string renderPromText(
    const std::vector<ProcessMetrics::FamilySample>& families);

/** Snapshot @p metrics and render it. */
std::string renderPromText(const ProcessMetrics& metrics);

} // namespace hcloud::obs

#endif // HCLOUD_OBS_PROM_TEXT_HPP
