#include "obs/metrics_http.hpp"

#include "obs/prom_text.hpp"

namespace hcloud::obs {

srv::HttpServerConfig
MetricsHttpServer::serverConfig()
{
    srv::HttpServerConfig config;
    // Scrapes are rare (seconds apart) and tiny: one worker is plenty,
    // and closing after every response keeps read-to-EOF scrape clients
    // working unchanged.
    config.workers = 1;
    config.keepAlive = false;
    config.maxRequestBytes = 8u * 1024;
    config.idleTimeoutMs = 2000;
    return config;
}

MetricsHttpServer::MetricsHttpServer(ProcessMetrics& metrics)
    : metrics_(metrics), server_(serverConfig())
{
    server_.route("GET", "/metrics", [this](const srv::HttpRequest&) {
        scrapes_.fetch_add(1, std::memory_order_relaxed);
        metrics_
            .counter("hcloud_exposition_scrapes_total",
                     "Scrapes served by the /metrics endpoint")
            .inc();
        srv::HttpResponse response;
        response.contentType = "text/plain; version=0.0.4; charset=utf-8";
        response.body = renderPromText(metrics_);
        return response;
    });
    server_.route("GET", "/healthz", [](const srv::HttpRequest&) {
        return srv::HttpResponse::text(200, "ok\n");
    });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(std::uint16_t port, std::string* error)
{
    return server_.start(port, error);
}

void
MetricsHttpServer::stop()
{
    server_.stop();
}

} // namespace hcloud::obs
