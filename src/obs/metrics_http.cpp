#include "obs/metrics_http.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "obs/prom_text.hpp"

namespace hcloud::obs {

namespace {

/** Largest request head we will buffer before giving up on a client. */
constexpr std::size_t kMaxRequestBytes = 8u * 1024;

void
closeQuietly(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Full EINTR-safe send of @p body; SIGPIPE suppressed. */
bool
sendAll(int fd, std::string_view body)
{
    const char* data = body.data();
    std::size_t remaining = body.size();
    while (remaining > 0) {
        const ssize_t n = ::send(fd, data, remaining, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += static_cast<std::size_t>(n);
        remaining -= static_cast<std::size_t>(n);
    }
    return true;
}

void
sendResponse(int fd, std::string_view status, std::string_view contentType,
             std::string_view body)
{
    std::string head = "HTTP/1.1 ";
    head += status;
    head += "\r\nContent-Type: ";
    head += contentType;
    head += "\r\nContent-Length: ";
    head += std::to_string(body.size());
    head += "\r\nConnection: close\r\n\r\n";
    if (sendAll(fd, head))
        sendAll(fd, body);
}

/**
 * Read until the header terminator, EOF, timeout or the size bound.
 * Only the request line matters, but draining the full head keeps
 * well-behaved clients from seeing a reset before the response.
 */
std::string
readRequestHead(int fd)
{
    std::string request;
    char chunk[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // timeout or error: parse whatever we have
        }
        if (n == 0)
            break;
        request.append(chunk, static_cast<std::size_t>(n));
    }
    return request;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(ProcessMetrics& metrics)
    : metrics_(metrics)
{
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(std::uint16_t port, std::string* error)
{
    auto fail = [&](const char* what) {
        if (error)
            *error = std::string(what) + ": " + std::strerror(errno);
        closeQuietly(listenFd_);
        closeQuietly(wakeFd_[0]);
        closeQuietly(wakeFd_[1]);
        return false;
    };

    if (running_) {
        if (error)
            *error = "already running";
        return false;
    }

    if (::pipe(wakeFd_) != 0)
        return fail("pipe");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 16) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    running_ = true;
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (thread_.joinable()) {
        running_ = false;
        // Self-pipe wake-up: poll() returns even if the loop is blocked
        // with no client in sight. EINTR here just retries the write.
        const char byte = 0;
        while (::write(wakeFd_[1], &byte, 1) < 0 && errno == EINTR) {
        }
        thread_.join();
    }
    running_ = false;
    closeQuietly(listenFd_);
    closeQuietly(wakeFd_[0]);
    closeQuietly(wakeFd_[1]);
    port_ = 0;
}

void
MetricsHttpServer::serveLoop()
{
    while (running_) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = wakeFd_[0];
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0 || !running_)
            return; // stop() woke us
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int client = -1;
        do {
            client = ::accept(listenFd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR);
        if (client < 0)
            continue;
        // Bound how long one slow client can hold the single-threaded
        // accept loop hostage.
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        handleConnection(client);
        ::close(client);
    }
}

void
MetricsHttpServer::handleConnection(int fd)
{
    const std::string request = readRequestHead(fd);
    const std::size_t line_end = request.find("\r\n");
    const std::string line = request.substr(
        0, line_end == std::string::npos ? request.size() : line_end);

    const bool get = line.rfind("GET ", 0) == 0;
    std::string target;
    if (get) {
        const std::size_t path_end = line.find(' ', 4);
        target = line.substr(4, path_end == std::string::npos
                                    ? std::string::npos
                                    : path_end - 4);
        // Scrapers may append query params; the path is what we route.
        target = target.substr(0, target.find('?'));
    }

    if (!get) {
        sendResponse(fd, "405 Method Not Allowed", "text/plain",
                     "method not allowed\n");
        return;
    }
    if (target == "/metrics") {
        scrapes_.fetch_add(1, std::memory_order_relaxed);
        metrics_
            .counter("hcloud_exposition_scrapes_total",
                     "Scrapes served by the /metrics endpoint")
            .inc();
        sendResponse(fd, "200 OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     renderPromText(metrics_));
        return;
    }
    if (target == "/healthz") {
        sendResponse(fd, "200 OK", "text/plain", "ok\n");
        return;
    }
    sendResponse(fd, "404 Not Found", "text/plain", "not found\n");
}

} // namespace hcloud::obs
