#include "obs/span.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace_sink.hpp"

namespace hcloud::obs {

namespace {

thread_local SpanTracer* tlsTracer = nullptr;
thread_local SpanContext tlsContext;

/** Serialize one span line into @p out (reused caller buffer). */
void
formatSpanLine(std::string& out, std::uint64_t trace, std::uint64_t id,
               std::uint64_t parent, const char* name,
               std::uint64_t startNs, std::uint64_t endNs,
               std::string_view detail)
{
    char head[192];
    const std::uint64_t dur = endNs >= startNs ? endNs - startNs : 0;
    std::snprintf(head, sizeof(head),
                  "{\"span\":\"%s\",\"trace\":%" PRIu64 ",\"id\":%" PRIu64
                  ",\"parent\":%" PRIu64 ",\"startNs\":%" PRIu64
                  ",\"durNs\":%" PRIu64,
                  name, trace, id, parent, startNs, dur);
    out = head;
    if (!detail.empty()) {
        out += ",\"detail\":\"";
        out += escapeJson(detail);
        out += '"';
    }
    out += '}';
}

} // namespace

SpanTracer::SpanTracer(SpanTracerConfig config) : config_(std::move(config))
{
    if (config_.sinkPath.empty())
        return;
    sink_ = std::make_unique<TraceSink>(config_.sinkPath);
    if (!sink_->ok()) {
        sink_.reset();
        return;
    }
    enabled_.store(true, std::memory_order_relaxed);
}

SpanTracer::~SpanTracer()
{
    flush();
}

void
SpanTracer::span(std::uint64_t trace, std::uint64_t id,
                 std::uint64_t parent, const char* name,
                 std::uint64_t startNs, std::uint64_t endNs,
                 std::string_view detail)
{
    if (!enabled())
        return;
    std::string line;
    formatSpanLine(line, trace, id, parent, name, startNs, endNs, detail);
    append(std::move(line));
}

void
SpanTracer::event(std::uint64_t trace, std::uint64_t parent,
                  const char* name, double simTime,
                  std::string_view detail)
{
    if (!enabled())
        return;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"event\":\"%s\",\"trace\":%" PRIu64
                  ",\"parent\":%" PRIu64 ",\"ns\":%" PRIu64,
                  name, trace, parent, nowNs());
    std::string line = head;
    line += ",\"t\":";
    line += formatDouble(simTime);
    if (!detail.empty()) {
        line += ",\"detail\":\"";
        line += escapeJson(detail);
        line += '"';
    }
    line += '}';
    append(std::move(line));
}

void
SpanTracer::append(std::string&& line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sink_)
        return;
    if (!sink_->appendLine(line)) {
        // A broken sink (disk full, path vanished) latches the whole
        // tracer off; span recording must never take a request down.
        sink_.reset();
        enabled_.store(false, std::memory_order_relaxed);
        return;
    }
    recorded_.fetch_add(1, std::memory_order_relaxed);
}

void
SpanTracer::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        sink_->flush();
}

std::uint64_t
SpanTracer::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

SpanContext
currentSpanContext()
{
    return tlsContext;
}

SpanTracer*
currentSpanTracer()
{
    return tlsTracer;
}

SpanBinding::SpanBinding(SpanTracer* tracer, SpanContext context)
    : prevTracer_(tlsTracer), prevContext_(tlsContext)
{
    tlsTracer = tracer;
    tlsContext = context;
}

SpanBinding::~SpanBinding()
{
    tlsTracer = prevTracer_;
    tlsContext = prevContext_;
}

SpanScope::SpanScope(const char* name, std::string_view detail)
{
    SpanTracer* tracer = tlsTracer;
    if (!tracer || !tracer->enabled() || !tlsContext.valid())
        return;
    tracer_ = tracer;
    name_ = name;
    prev_ = tlsContext;
    id_ = tracer->newSpanId();
    startNs_ = SpanTracer::nowNs();
    detail_.assign(detail);
    tlsContext = SpanContext{prev_.trace, id_};
}

SpanScope::~SpanScope()
{
    if (!tracer_)
        return;
    tlsContext = prev_;
    tracer_->span(prev_.trace, id_, prev_.span, name_, startNs_,
                  SpanTracer::nowNs(), detail_);
}

bool
writeChromeTrace(std::istream& in, std::ostream& out, std::string* error)
{
    // Chrome's viewer groups rows by (pid, tid); mapping each trace id
    // to its own tid renders one request per row. Trace ids are dense
    // small counters, so the uint64 -> tid map stays tiny.
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    std::string line;
    std::size_t records = 0;
    std::size_t skipped = 0;
    JsonWriter w;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue v;
        try {
            v = parseJson(line);
        } catch (const std::exception&) {
            ++skipped;
            continue;
        }
        const JsonValue* span = v.find("span");
        const JsonValue* event = v.find("event");
        const JsonValue* trace = v.find("trace");
        if ((!span && !event) || !trace) {
            ++skipped;
            continue;
        }
        if (records > 0)
            out << ',';
        w.beginObject();
        w.field("name", span ? span->stringOr("?") : event->stringOr("?"));
        w.field("cat", span ? "span" : "event");
        w.field("pid", 1);
        w.field("tid", static_cast<std::uint64_t>(trace->numberOr(0.0)));
        if (span) {
            w.field("ph", "X");
            const JsonValue* start = v.find("startNs");
            const JsonValue* dur = v.find("durNs");
            w.field("ts", (start ? start->numberOr(0.0) : 0.0) / 1e3);
            w.field("dur", (dur ? dur->numberOr(0.0) : 0.0) / 1e3);
        } else {
            w.field("ph", "i");
            w.field("s", "t");
            const JsonValue* ns = v.find("ns");
            w.field("ts", (ns ? ns->numberOr(0.0) : 0.0) / 1e3);
        }
        w.key("args");
        w.beginObject();
        if (const JsonValue* detail = v.find("detail"))
            w.field("detail", detail->stringOr(""));
        if (const JsonValue* t = v.find("t"))
            w.field("simTime", t->numberOr(0.0));
        if (const JsonValue* id = v.find("id"))
            w.field("span", static_cast<std::uint64_t>(id->numberOr(0.0)));
        if (const JsonValue* parent = v.find("parent"))
            w.field("parent",
                    static_cast<std::uint64_t>(parent->numberOr(0.0)));
        w.endObject();
        w.endObject();
        out << w.take();
        ++records;
    }
    out << "]}";
    if (records == 0) {
        if (error)
            *error = "no span records found";
        return false;
    }
    if (skipped > 0 && error)
        *error = std::to_string(skipped) + " unrecognized line(s) skipped";
    return true;
}

} // namespace hcloud::obs
