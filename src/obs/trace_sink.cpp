#include "obs/trace_sink.hpp"

#include <cerrno>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "obs/process_metrics.hpp"
#include "obs/tracer.hpp"

namespace hcloud::obs {

namespace {

/** Buffered bytes before an automatic drain through the descriptor. */
constexpr std::size_t kDrainThreshold = 1u << 16;

} // namespace

TraceSink::TraceSink(std::string path) : path_(std::move(path))
{
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    buffer_.reserve(kDrainThreshold);
}

TraceSink::~TraceSink()
{
    flush();
    if (fd_ >= 0)
        ::close(fd_);
}

bool
TraceSink::append(const TraceEvent& event)
{
    if (!ok())
        return false;
    return appendLine(toJson(event));
}

bool
TraceSink::appendLine(std::string_view line)
{
    if (!ok())
        return false;
    buffer_ += line;
    buffer_ += '\n';
    ++written_;
    if (buffer_.size() >= kDrainThreshold)
        return drain();
    return true;
}

bool
TraceSink::flush()
{
    if (!ok())
        return false;
    return drain();
}

bool
TraceSink::drain()
{
    const char* data = buffer_.data();
    std::size_t remaining = buffer_.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd_, data, remaining);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            ProcessMetrics::instance()
                .counter("hcloud_trace_sink_failures_total",
                         "Trace sink drains aborted by a write error")
                .inc();
            return false;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
    if (!buffer_.empty())
        ProcessMetrics::instance()
            .counter("hcloud_trace_flushed_bytes_total",
                     "Bytes of trace JSONL written to streaming sinks")
            .inc(static_cast<double>(buffer_.size()));
    buffer_.clear();
    return true;
}

} // namespace hcloud::obs
