#include "obs/phase_profiler.hpp"

namespace hcloud::obs {

void
PhaseProfiler::add(std::string_view phase, double seconds)
{
    auto it = phases_.find(phase);
    if (it == phases_.end())
        phases_.emplace(std::string(phase), seconds);
    else
        it->second += seconds;
}

double
PhaseProfiler::seconds(std::string_view phase) const
{
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
}

} // namespace hcloud::obs
