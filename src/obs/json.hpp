/**
 * @file
 * Minimal JSON support for machine-readable run artifacts.
 *
 * Writer: streaming, append-only, with deterministic number formatting —
 * doubles are printed with the shortest representation that round-trips,
 * so identical values always serialize to identical bytes (the JSONL
 * byte-identity contract leans on this).
 *
 * Parser: a small recursive-descent reader covering the JSON the writer
 * emits (objects, arrays, strings, numbers, booleans, null). It exists
 * for the round-trip tests and the trace_inspect tool; it is not a
 * general-purpose validating parser.
 */

#ifndef HCLOUD_OBS_JSON_HPP
#define HCLOUD_OBS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hcloud::obs {

/** Shortest decimal form of @p v that parses back to the same bits. */
std::string formatDouble(double v);

/** @p s with JSON string escapes applied (no surrounding quotes). */
std::string escapeJson(std::string_view s);

/**
 * Streaming JSON writer building into an internal buffer.
 *
 * Usage: begin/end Object/Array nest freely; key() names the next value
 * inside an object; commas are inserted automatically.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    void key(std::string_view name);
    void value(std::string_view s);
    void value(const char* s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void valueNull();

    /**
     * Format doubles with std::to_chars instead of the snprintf/strtod
     * shortest-round-trip search. Same parsed values, not the same
     * bytes — only for streams that are re-parsed, never byte-compared
     * (the session journal hot path).
     */
    void rawDoubles(bool on) { rawDoubles_ = on; }

    /** Shorthand for key(name) followed by value(v). */
    template <typename T>
    void field(std::string_view name, T&& v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    const std::string& str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void comma();

    std::string out_;
    /** One entry per open container: does the next item need a comma? */
    std::vector<bool> needComma_;
    bool pendingKey_ = false;
    bool rawDoubles_ = false;
};

/** Parsed JSON value (order-preserving object representation). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member of an object, or nullptr when absent / not an object. */
    const JsonValue* find(std::string_view name) const;

    double numberOr(double fallback) const
    {
        return type == Type::Number ? number : fallback;
    }
    std::string stringOr(std::string fallback) const
    {
        return type == Type::String ? string : std::move(fallback);
    }
    bool boolOr(bool fallback) const
    {
        return type == Type::Bool ? boolean : fallback;
    }
};

/**
 * Parse one JSON document from @p text.
 * @throws std::runtime_error on malformed input.
 */
JsonValue parseJson(std::string_view text);

} // namespace hcloud::obs

#endif // HCLOUD_OBS_JSON_HPP
