/**
 * @file
 * Trace event taxonomy: the typed, timestamped records the obs::Tracer
 * collects during a run.
 *
 * Three axes classify every event:
 *  - EventKind: what happened (job lifecycle, instance lifecycle, a
 *    provisioning decision, a controller update);
 *  - Category: coarse grouping used for filter masks;
 *  - Severity: Debug < Info < Warn, used for filtering.
 *
 * Provisioning decisions additionally carry a DecisionReason — the *why*
 * behind the hybrid controller's mapping/queueing/release choices
 * (soft-limit crossings, Q90 confidence checks, QoS escalations,
 * spot-market interruptions; Section 4 of the paper).
 */

#ifndef HCLOUD_OBS_TRACE_EVENT_HPP
#define HCLOUD_OBS_TRACE_EVENT_HPP

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace hcloud::obs {

/** What happened. */
enum class EventKind
{
    // Job lifecycle.
    JobSubmit,  ///< job arrived and was handed to the strategy
    JobQueue,   ///< job entered the reserved-capacity queue
    JobStart,   ///< job transitioned to Running on an instance
    JobFinish,  ///< job completed successfully
    JobFail,    ///< job failed (fault, eviction, or runtime cap)
    // Instance lifecycle.
    InstanceRequest, ///< on-demand/spot instance requested (spin-up begins)
    InstanceReady,   ///< instance became Running (value = sampled quality)
    InstanceRelease, ///< instance returned to the provider
    // Control plane.
    Decision,        ///< provisioning decision with a DecisionReason
    SoftLimitUpdate, ///< adaptive soft limit moved (value = new limit)
    QosViolation,    ///< QoS check flagged a running job (value = streak)
    MarketSpike,     ///< spot market entered a price spike
};

/** Coarse event grouping, used for category filter masks. */
enum class Category
{
    Job,
    Instance,
    Decision,
    Controller,
};

/** Bit for @p category in a TraceConfig::categoryMask. */
constexpr unsigned
categoryBit(Category category)
{
    return 1u << static_cast<unsigned>(category);
}

/** Mask accepting every category. */
inline constexpr unsigned kAllCategories =
    categoryBit(Category::Job) | categoryBit(Category::Instance) |
    categoryBit(Category::Decision) | categoryBit(Category::Controller);

/** The category an event kind belongs to. */
Category categoryOf(EventKind kind);

/** Event severity (ordered; filters keep >= minSeverity). */
enum class Severity
{
    Debug,
    Info,
    Warn,
};

/**
 * Why a provisioning decision went the way it did. One value per decision
 * site in core/ and cloud/; test_obs asserts the coverage.
 */
enum class DecisionReason
{
    None,               ///< not a decision event
    BelowSoftLimit,     ///< reserved utilization under the soft limit
    SoftLimitExceeded,  ///< between soft and hard limit, overflow allowed
    HardLimitExceeded,  ///< above the hard limit, overflow forced
    QualityBelowQ90,    ///< on-demand Q90 confidence misses the target Q
    QueueWaitExceeded,  ///< estimated wait beats a large-instance spin-up
    QueueTimeoutEscape, ///< actual queueing time exceeded the escape limit
    ReservedFragmented, ///< pool had capacity on paper but no single host
    PolicyStatic,       ///< a static policy (P1-P7) decided mechanically
    QosViolationBoost,  ///< QoS monitor grew the allocation in place
    QosViolationReschedule, ///< QoS monitor moved the job (last resort)
    RetentionExpired,   ///< idle instance outlived its retention window
    LowQualityRelease,  ///< idle instance released for poor quality
    SpotEntry,          ///< tolerant batch work sent to the spot market
    SpotInterruption,   ///< market price rose above the bid
};

/** Every reason, for iteration in tests and the inspector. */
inline constexpr DecisionReason kAllDecisionReasons[] = {
    DecisionReason::None,
    DecisionReason::BelowSoftLimit,
    DecisionReason::SoftLimitExceeded,
    DecisionReason::HardLimitExceeded,
    DecisionReason::QualityBelowQ90,
    DecisionReason::QueueWaitExceeded,
    DecisionReason::QueueTimeoutEscape,
    DecisionReason::ReservedFragmented,
    DecisionReason::PolicyStatic,
    DecisionReason::QosViolationBoost,
    DecisionReason::QosViolationReschedule,
    DecisionReason::RetentionExpired,
    DecisionReason::LowQualityRelease,
    DecisionReason::SpotEntry,
    DecisionReason::SpotInterruption,
};

/** Every event kind, for iteration in tests and the inspector. */
inline constexpr EventKind kAllEventKinds[] = {
    EventKind::JobSubmit,      EventKind::JobQueue,
    EventKind::JobStart,       EventKind::JobFinish,
    EventKind::JobFail,        EventKind::InstanceRequest,
    EventKind::InstanceReady,  EventKind::InstanceRelease,
    EventKind::Decision,       EventKind::SoftLimitUpdate,
    EventKind::QosViolation,   EventKind::MarketSpike,
};

const char* toString(EventKind kind);
const char* toString(Category category);
const char* toString(Severity severity);
const char* toString(DecisionReason reason);

/** Inverse of toString; returns false when @p name is unknown. */
bool parseEventKind(const std::string& name, EventKind* out);
bool parseSeverity(const std::string& name, Severity* out);
bool parseDecisionReason(const std::string& name, DecisionReason* out);

/**
 * One trace record. Fields not meaningful for a kind stay at their
 * defaults (0 / None / empty) and are omitted from the JSONL encoding.
 */
struct TraceEvent
{
    sim::Time time = 0.0;
    EventKind kind = EventKind::JobSubmit;
    Severity severity = Severity::Info;
    DecisionReason reason = DecisionReason::None;
    /** Subject job (0 = none). */
    sim::JobId job = 0;
    /** Subject instance (0 = none). */
    sim::InstanceId instance = 0;
    /** Kind-specific scalar (quality, limit, cores, wait seconds...). */
    double value = 0.0;
    /** Short free-form context (instance type name, map target...). */
    std::string detail;
    /** Wire-request span trace id that caused this event (0 = none;
     *  stamped by Tracer::setActiveTrace during session-mode calls).
     *  Last on purpose: existing positional aggregate initializers stay
     *  valid, and batch runs never set it, so their JSONL stays
     *  byte-identical. */
    std::uint64_t trace = 0;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_TRACE_EVENT_HPP
