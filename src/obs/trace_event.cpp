#include "obs/trace_event.hpp"

namespace hcloud::obs {

Category
categoryOf(EventKind kind)
{
    switch (kind) {
      case EventKind::JobSubmit:
      case EventKind::JobQueue:
      case EventKind::JobStart:
      case EventKind::JobFinish:
      case EventKind::JobFail:
        return Category::Job;
      case EventKind::InstanceRequest:
      case EventKind::InstanceReady:
      case EventKind::InstanceRelease:
        return Category::Instance;
      case EventKind::Decision:
        return Category::Decision;
      case EventKind::SoftLimitUpdate:
      case EventKind::QosViolation:
      case EventKind::MarketSpike:
        return Category::Controller;
    }
    return Category::Controller;
}

const char*
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::JobSubmit:
        return "job_submit";
      case EventKind::JobQueue:
        return "job_queue";
      case EventKind::JobStart:
        return "job_start";
      case EventKind::JobFinish:
        return "job_finish";
      case EventKind::JobFail:
        return "job_fail";
      case EventKind::InstanceRequest:
        return "instance_request";
      case EventKind::InstanceReady:
        return "instance_ready";
      case EventKind::InstanceRelease:
        return "instance_release";
      case EventKind::Decision:
        return "decision";
      case EventKind::SoftLimitUpdate:
        return "soft_limit_update";
      case EventKind::QosViolation:
        return "qos_violation";
      case EventKind::MarketSpike:
        return "market_spike";
    }
    return "?";
}

const char*
toString(Category category)
{
    switch (category) {
      case Category::Job:
        return "job";
      case Category::Instance:
        return "instance";
      case Category::Decision:
        return "decision";
      case Category::Controller:
        return "controller";
    }
    return "?";
}

const char*
toString(Severity severity)
{
    switch (severity) {
      case Severity::Debug:
        return "debug";
      case Severity::Info:
        return "info";
      case Severity::Warn:
        return "warn";
    }
    return "?";
}

const char*
toString(DecisionReason reason)
{
    switch (reason) {
      case DecisionReason::None:
        return "none";
      case DecisionReason::BelowSoftLimit:
        return "below_soft_limit";
      case DecisionReason::SoftLimitExceeded:
        return "soft_limit_exceeded";
      case DecisionReason::HardLimitExceeded:
        return "hard_limit_exceeded";
      case DecisionReason::QualityBelowQ90:
        return "quality_below_q90";
      case DecisionReason::QueueWaitExceeded:
        return "queue_wait_exceeded";
      case DecisionReason::QueueTimeoutEscape:
        return "queue_timeout_escape";
      case DecisionReason::ReservedFragmented:
        return "reserved_fragmented";
      case DecisionReason::PolicyStatic:
        return "policy_static";
      case DecisionReason::QosViolationBoost:
        return "qos_violation_boost";
      case DecisionReason::QosViolationReschedule:
        return "qos_violation_reschedule";
      case DecisionReason::RetentionExpired:
        return "retention_expired";
      case DecisionReason::LowQualityRelease:
        return "low_quality_release";
      case DecisionReason::SpotEntry:
        return "spot_entry";
      case DecisionReason::SpotInterruption:
        return "spot_interruption";
    }
    return "?";
}

bool
parseEventKind(const std::string& name, EventKind* out)
{
    for (EventKind kind : kAllEventKinds) {
        if (name == toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parseSeverity(const std::string& name, Severity* out)
{
    for (Severity sev : {Severity::Debug, Severity::Info, Severity::Warn}) {
        if (name == toString(sev)) {
            *out = sev;
            return true;
        }
    }
    return false;
}

bool
parseDecisionReason(const std::string& name, DecisionReason* out)
{
    for (DecisionReason reason : kAllDecisionReasons) {
        if (name == toString(reason)) {
            *out = reason;
            return true;
        }
    }
    return false;
}

} // namespace hcloud::obs
