#include "obs/metrics_registry.hpp"

#include <algorithm>

namespace hcloud::obs {

const char*
toString(MetricSample::Kind kind)
{
    switch (kind) {
      case MetricSample::Kind::Counter:
        return "counter";
      case MetricSample::Kind::Gauge:
        return "gauge";
      case MetricSample::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

Counter&
MetricsRegistry::counter(std::string_view name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), Counter{}).first;
    return it->second;
}

Gauge&
MetricsRegistry::gauge(std::string_view name)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), Gauge{}).first;
    return it->second;
}

HistogramMetric&
MetricsRegistry::histogram(std::string_view name)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), HistogramMetric{})
                 .first;
    return it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    out.reserve(size());
    for (const auto& [name, c] : counters_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Counter;
        s.count = c.value();
        s.value = static_cast<double>(c.value());
        out.push_back(std::move(s));
    }
    for (const auto& [name, g] : gauges_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Gauge;
        s.value = g.value();
        out.push_back(std::move(s));
    }
    for (const auto& [name, h] : histograms_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Histogram;
        const sim::SampleSet& samples = h.samples();
        s.count = samples.count();
        if (!samples.empty()) {
            s.value = samples.mean();
            s.p50 = samples.quantile(0.50);
            s.p95 = samples.quantile(0.95);
            s.max = samples.quantile(1.0);
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
    return out;
}

} // namespace hcloud::obs
