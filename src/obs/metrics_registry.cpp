#include "obs/metrics_registry.hpp"

#include <algorithm>

namespace hcloud::obs {

namespace {

bool
validFirstChar(char c, bool allowColon)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           (allowColon && c == ':');
}

bool
validChar(char c, bool allowColon)
{
    return validFirstChar(c, allowColon) || (c >= '0' && c <= '9');
}

bool
isValidName(std::string_view name, bool allowColon)
{
    if (name.empty() || !validFirstChar(name.front(), allowColon))
        return false;
    for (char c : name)
        if (!validChar(c, allowColon))
            return false;
    return true;
}

std::string
sanitizeName(std::string_view name, bool allowColon)
{
    if (name.empty())
        return "_";
    std::string out;
    out.reserve(name.size() + 1);
    if (!validFirstChar(name.front(), allowColon) &&
        validChar(name.front(), allowColon))
        out += '_'; // leading digit: prefix instead of erasing it
    for (char c : name)
        out += validChar(c, allowColon) ? c : '_';
    return out;
}

/** Sanitized lookup shared by the three metric maps. */
template <typename Map>
typename Map::mapped_type&
getOrCreate(Map& map, std::string_view name)
{
    if (isValidName(name, /*allowColon=*/true)) {
        auto it = map.find(name);
        if (it == map.end())
            it = map.emplace(std::string(name),
                             typename Map::mapped_type{})
                     .first;
        return it->second;
    }
    const std::string sanitized = sanitizeName(name, /*allowColon=*/true);
    auto it = map.find(sanitized);
    if (it == map.end())
        it = map.emplace(sanitized, typename Map::mapped_type{}).first;
    return it->second;
}

} // namespace

bool
isValidMetricName(std::string_view name)
{
    return isValidName(name, /*allowColon=*/true);
}

std::string
sanitizeMetricName(std::string_view name)
{
    return sanitizeName(name, /*allowColon=*/true);
}

std::string
sanitizeLabelName(std::string_view name)
{
    return sanitizeName(name, /*allowColon=*/false);
}

const char*
toString(MetricSample::Kind kind)
{
    switch (kind) {
      case MetricSample::Kind::Counter:
        return "counter";
      case MetricSample::Kind::Gauge:
        return "gauge";
      case MetricSample::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

Counter&
MetricsRegistry::counter(std::string_view name)
{
    return getOrCreate(counters_, name);
}

Gauge&
MetricsRegistry::gauge(std::string_view name)
{
    return getOrCreate(gauges_, name);
}

HistogramMetric&
MetricsRegistry::histogram(std::string_view name)
{
    return getOrCreate(histograms_, name);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    out.reserve(size());
    for (const auto& [name, c] : counters_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Counter;
        s.count = c.value();
        s.value = static_cast<double>(c.value());
        out.push_back(std::move(s));
    }
    for (const auto& [name, g] : gauges_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Gauge;
        s.value = g.value();
        out.push_back(std::move(s));
    }
    for (const auto& [name, h] : histograms_) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Histogram;
        const sim::SampleSet& samples = h.samples();
        s.count = samples.count();
        if (!samples.empty()) {
            s.value = samples.mean();
            s.p50 = samples.quantile(0.50);
            s.p95 = samples.quantile(0.95);
            s.p99 = samples.quantile(0.99);
            s.max = samples.quantile(1.0);
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
    return out;
}

} // namespace hcloud::obs
