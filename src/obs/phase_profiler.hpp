/**
 * @file
 * Wall-clock phase profiling for one run: named phase accumulators plus
 * the RunTelemetry record surfaced per run-matrix cell.
 *
 * Telemetry is *about* the run, not part of the simulated result: it is
 * serialized into JSON reports but deliberately excluded from the JSONL
 * event trace and from determinism digests, because wall-clock durations
 * vary between executions even when the simulation is bit-identical.
 */

#ifndef HCLOUD_OBS_PHASE_PROFILER_HPP
#define HCLOUD_OBS_PHASE_PROFILER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace hcloud::obs {

/** Accumulates wall-clock seconds per named phase. */
class PhaseProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    void add(std::string_view phase, double seconds);

    /** Accumulated seconds for @p phase (0 when never entered). */
    double seconds(std::string_view phase) const;

    const std::map<std::string, double, std::less<>>& phases() const
    {
        return phases_;
    }

    /** RAII phase timer: accumulates on destruction. */
    class Scope
    {
      public:
        Scope(PhaseProfiler& profiler, std::string_view phase)
            : profiler_(profiler), phase_(phase), start_(Clock::now())
        {
        }

        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

        ~Scope()
        {
            profiler_.add(
                phase_,
                std::chrono::duration<double>(Clock::now() - start_)
                    .count());
        }

      private:
        PhaseProfiler& profiler_;
        std::string phase_;
        Clock::time_point start_;
    };

  private:
    std::map<std::string, double, std::less<>> phases_;
};

/**
 * Wall-clock profile of one run, surfaced through RunResult and the
 * run-matrix runners. All durations in seconds.
 */
struct RunTelemetry
{
    /** Scenario trace generation (shared traces: attributed to every
     *  cell that consumed the trace). */
    double traceGenSec = 0.0;
    /** Engine setup: provider, strategy, arrival scheduling. */
    double setupSec = 0.0;
    /** The discrete-event simulation loop. */
    double simLoopSec = 0.0;
    /** Result finalization (aggregation into RunResult). */
    double finalizeSec = 0.0;
    /** Simulator events processed by the sim loop. */
    std::uint64_t eventsProcessed = 0;
    /** Scheduled callbacks that spilled to the heap (oversized capture).
     *  Not serialized into reports; tests pin this to zero. */
    std::uint64_t callbackHeapAllocs = 0;
    /** eventsProcessed / simLoopSec (0 when the loop was too fast to
     *  time). */
    double eventsPerSec = 0.0;
    /** Worker count of the runner that produced this cell. */
    std::size_t threads = 1;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_PHASE_PROFILER_HPP
