/**
 * @file
 * MetricsHttpServer: minimal blocking HTTP/1.1 endpoint for live scrapes.
 *
 * One POSIX listening socket on 127.0.0.1 plus a single accept thread —
 * scrapes are rare (seconds apart) and tiny, so concurrency would only
 * add failure modes. Design constraints:
 *
 *  - `GET /metrics` renders the registry at scrape time (Prometheus text
 *    exposition 0.0.4); `GET /healthz` answers `ok` for liveness probes;
 *    anything else is 404/405. Connections close after one response;
 *  - request reads are bounded (8 KiB, 2 s receive timeout) so a stuck
 *    or malicious client cannot wedge the accept loop;
 *  - all socket calls are EINTR-safe, and responses are written with
 *    MSG_NOSIGNAL so a client hanging up early cannot SIGPIPE the bench;
 *  - shutdown is deterministic via the self-pipe trick: stop() writes
 *    one byte to a pipe the accept loop polls alongside the listening
 *    socket, then joins the thread — no leaked thread, no race with an
 *    in-flight accept (asserted TSan-clean in tests/test_obs_prom.cpp);
 *  - port 0 binds an ephemeral port; boundPort() reports the real one.
 *
 * The server never touches simulation state: it only snapshots the
 * (thread-safe) ProcessMetrics registry, so serving scrapes mid-sweep
 * cannot perturb determinism contracts.
 */

#ifndef HCLOUD_OBS_METRICS_HTTP_HPP
#define HCLOUD_OBS_METRICS_HTTP_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/process_metrics.hpp"

namespace hcloud::obs {

/** Serves ProcessMetrics over HTTP until stopped or destroyed. */
class MetricsHttpServer
{
  public:
    explicit MetricsHttpServer(
        ProcessMetrics& metrics = ProcessMetrics::instance());

    /** Stops the server if still running. */
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept thread.
     * @return false (with @p error filled when non-null) on any socket
     * failure; the server is then inert and safe to destroy.
     */
    bool start(std::uint16_t port, std::string* error = nullptr);

    /** Accept thread is live. */
    bool running() const { return running_; }

    /** Actual bound port (resolves port 0); 0 when not running. */
    std::uint16_t boundPort() const { return port_; }

    /** Scrapes served so far (also exported as
     *  `hcloud_exposition_scrapes_total`). */
    std::uint64_t scrapeCount() const { return scrapes_; }

    /** Idempotent: wake the accept loop, join, close all descriptors. */
    void stop();

  private:
    void serveLoop();
    void handleConnection(int fd);

    ProcessMetrics& metrics_;
    int listenFd_ = -1;
    int wakeFd_[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> scrapes_{0};
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_METRICS_HTTP_HPP
