/**
 * @file
 * MetricsHttpServer: the Prometheus scrape endpoint, as a thin wrapper
 * over srv::HttpServer.
 *
 * Historically this file carried its own POSIX socket/accept loop; that
 * loop was generalized into srv::HttpServer (routing, keep-alive, worker
 * pool, bounded reads, self-pipe shutdown) and this class now only
 * registers the two scrape routes on top of it. Behavior is unchanged:
 *
 *  - `GET /metrics` renders the registry at scrape time (Prometheus text
 *    exposition 0.0.4); `GET /healthz` answers `ok` for liveness probes;
 *    unknown paths are 404 and wrong methods 405. Connections close
 *    after one response (keep-alive off), which read-to-EOF scrapers
 *    rely on;
 *  - request reads stay bounded (8 KiB, 2 s idle timeout) so a stuck or
 *    malicious client cannot wedge the endpoint;
 *  - shutdown remains deterministic: stop() joins every thread and
 *    closes every descriptor (asserted TSan-clean in
 *    tests/test_obs_prom.cpp);
 *  - port 0 binds an ephemeral port; boundPort() reports the real one.
 *
 * The server never touches simulation state: it only snapshots the
 * (thread-safe) ProcessMetrics registry, so serving scrapes mid-sweep
 * cannot perturb determinism contracts.
 */

#ifndef HCLOUD_OBS_METRICS_HTTP_HPP
#define HCLOUD_OBS_METRICS_HTTP_HPP

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/process_metrics.hpp"
#include "srv/http_server.hpp"

namespace hcloud::obs {

/** Serves ProcessMetrics over HTTP until stopped or destroyed. */
class MetricsHttpServer
{
  public:
    explicit MetricsHttpServer(
        ProcessMetrics& metrics = ProcessMetrics::instance());

    /** Stops the server if still running. */
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept thread.
     * @return false (with @p error filled when non-null) on any socket
     * failure; the server is then inert and safe to destroy.
     */
    bool start(std::uint16_t port, std::string* error = nullptr);

    /** Accept thread is live. */
    bool running() const { return server_.running(); }

    /** Actual bound port (resolves port 0); 0 when not running. */
    std::uint16_t boundPort() const { return server_.boundPort(); }

    /** Scrapes served so far (also exported as
     *  `hcloud_exposition_scrapes_total`). */
    std::uint64_t scrapeCount() const { return scrapes_; }

    /** Idempotent: wake the accept loop, join, close all descriptors. */
    void stop();

  private:
    static srv::HttpServerConfig serverConfig();

    ProcessMetrics& metrics_;
    srv::HttpServer server_;
    std::atomic<std::uint64_t> scrapes_{0};
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_METRICS_HTTP_HPP
