#include "obs/tracer.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "obs/trace_sink.hpp"

namespace hcloud::obs {

namespace {

/**
 * Fold one harvested trace buffer into the process registry. Publishing
 * happens at take(), not per record(): the record path runs once per sim
 * event and must stay free of shared-cache traffic.
 */
void
publishTraceBuffer(const TraceBuffer& buffer)
{
    ProcessMetrics& pm = ProcessMetrics::instance();
    pm.counter("hcloud_trace_events_recorded_total",
               "Trace events accepted past severity/category filters")
        .inc(static_cast<double>(buffer.recorded));
    pm.counter("hcloud_trace_events_dropped_total",
               "Trace events evicted from a full ring (no sink)")
        .inc(static_cast<double>(buffer.dropped));
    pm.gauge("hcloud_trace_ring_occupancy",
             "In-memory events in the most recently harvested ring")
        .set(static_cast<double>(buffer.events.size()));
    pm.gauge("hcloud_trace_sink_ok",
             "1 when the last harvested tracer's sink was healthy")
        .set(buffer.sinkOk ? 1.0 : 0.0);
}

const char*
envTraceValue()
{
    return std::getenv("HCLOUD_TRACE");
}

bool
isOffToken(std::string_view v)
{
    return v.empty() || v == "0" || v == "off" || v == "false";
}

bool
isOnToken(std::string_view v)
{
    return v == "1" || v == "on" || v == "true";
}

} // namespace

bool
envTraceEnabled()
{
    const char* v = envTraceValue();
    return v && !isOffToken(v);
}

std::string
envTracePath()
{
    const char* v = envTraceValue();
    if (!v || isOffToken(v) || isOnToken(v))
        return "";
    return v;
}

bool
TraceConfig::resolveEnabled() const
{
    switch (mode) {
      case Mode::Off:
        return false;
      case Mode::On:
        return true;
      case Mode::Auto:
        return envTraceEnabled();
    }
    return false;
}

Tracer::Tracer(TraceConfig config)
    : config_(std::move(config)), enabled_(config_.resolveEnabled())
{
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
    if (enabled_ && !config_.sinkPath.empty()) {
        sink_ = std::make_unique<TraceSink>(config_.sinkPath);
        if (!sink_->ok()) {
            // Unopenable sink: fall back to the in-memory ring so the
            // run still traces; take() reports the failure.
            sink_.reset();
            sinkFailed_ = true;
        }
    }
}

Tracer::~Tracer() = default;

void
Tracer::reset(TraceConfig config)
{
    sink_.reset(); // closes any previous sink file
    config_ = std::move(config);
    enabled_ = config_.resolveEnabled();
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
    events_.clear(); // keeps the ring's grown capacity
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    sinkFailed_ = false;
    activeTrace_ = 0;
    onRecord_ = nullptr;
    if (enabled_ && !config_.sinkPath.empty()) {
        sink_ = std::make_unique<TraceSink>(config_.sinkPath);
        if (!sink_->ok()) {
            sink_.reset();
            sinkFailed_ = true;
        }
    }
}

void
Tracer::emit(EventKind kind, Severity severity, DecisionReason reason,
             sim::Time t, sim::JobId job, sim::InstanceId instance,
             double value, std::string_view detail)
{
    TraceEvent ev;
    ev.time = t;
    ev.kind = kind;
    ev.severity = severity;
    ev.reason = reason;
    ev.job = job;
    ev.instance = instance;
    ev.value = value;
    ev.detail = std::string(detail);
    record(std::move(ev));
}

void
Tracer::record(TraceEvent event)
{
    if (!enabled_)
        return;
    if (event.severity < config_.minSeverity)
        return;
    if (!(config_.categoryMask & categoryBit(categoryOf(event.kind))))
        return;
    if (activeTrace_ != 0 && event.trace == 0)
        event.trace = activeTrace_;
    ++recorded_;
    if (onRecord_)
        onRecord_(event);
    if (events_.size() < config_.ringCapacity) {
        events_.push_back(std::move(event));
        return;
    }
    if (sink_) {
        // Ring wrap with a sink attached: drain the ring to disk instead
        // of evicting, so the on-disk stream stays complete.
        flushRingToSink();
        if (events_.empty()) {
            events_.push_back(std::move(event));
            return;
        }
        // The flush failed mid-write; fall through to ring eviction.
    }
    // Ring full: overwrite the oldest slot.
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % config_.ringCapacity;
    ++dropped_;
}

void
Tracer::flushRingToSink()
{
    // With a healthy sink the ring never wraps (head_ == 0), but flush in
    // chronological order anyway so a mid-run fallback stays consistent.
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent& ev = events_[(head_ + i) % events_.size()];
        if (!sink_->append(ev)) {
            // Keep the unflushed tail: rotate it to the front and resume
            // ring semantics from there.
            std::vector<TraceEvent> tail;
            tail.reserve(events_.size() - i);
            for (std::size_t j = i; j < events_.size(); ++j)
                tail.push_back(
                    std::move(events_[(head_ + j) % events_.size()]));
            events_ = std::move(tail);
            head_ = 0;
            sink_.reset();
            sinkFailed_ = true;
            return;
        }
    }
    events_.clear();
    head_ = 0;
}

TraceBuffer
Tracer::take()
{
    TraceBuffer buffer;
    buffer.recorded = recorded_;
    buffer.dropped = dropped_;
    buffer.sinkOk = !sinkFailed_;
    if (sink_) {
        // Final drain: the on-disk stream must hold every recorded
        // event before the buffer advertises the sink path.
        flushRingToSink();
        if (sink_ && sink_->flush()) {
            buffer.sinkPath = config_.sinkPath;
            buffer.flushed = sink_->written();
            sink_.reset();
            head_ = 0;
            recorded_ = 0;
            dropped_ = 0;
            events_.clear();
            publishTraceBuffer(buffer);
            return buffer;
        }
        // The drain or flush broke the sink; report the ring fallback.
        buffer.sinkOk = false;
        buffer.dropped = dropped_;
        sink_.reset();
        sinkFailed_ = true;
    }
    if (head_ == 0) {
        buffer.events = std::move(events_);
    } else {
        // Unwrap the ring into chronological order.
        buffer.events.reserve(events_.size());
        for (std::size_t i = 0; i < events_.size(); ++i) {
            buffer.events.push_back(
                std::move(events_[(head_ + i) % events_.size()]));
        }
    }
    events_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    if (enabled_)
        publishTraceBuffer(buffer);
    return buffer;
}

std::string
toJson(const TraceEvent& event)
{
    JsonWriter w;
    w.beginObject();
    w.field("t", event.time);
    w.field("kind", toString(event.kind));
    if (event.severity != Severity::Info)
        w.field("sev", toString(event.severity));
    if (event.reason != DecisionReason::None)
        w.field("reason", toString(event.reason));
    if (event.job != 0)
        w.field("job", static_cast<std::uint64_t>(event.job));
    if (event.instance != 0)
        w.field("inst", static_cast<std::uint64_t>(event.instance));
    if (std::isnan(event.value)) {
        // JSON has no NaN/Inf literals; encode them as tagged strings so
        // the round trip preserves them instead of collapsing to 0.
        w.field("value", "NaN");
    } else if (std::isinf(event.value)) {
        w.field("value", event.value > 0.0 ? "Infinity" : "-Infinity");
    } else if (event.value != 0.0) {
        w.field("value", event.value);
    }
    if (!event.detail.empty())
        w.field("detail", event.detail);
    if (event.trace != 0)
        w.field("trace", event.trace);
    w.endObject();
    return w.take();
}

void
writeJsonl(std::ostream& out, const TraceBuffer& buffer)
{
    for (const TraceEvent& ev : buffer.events)
        out << toJson(ev) << '\n';
}

bool
eventFromJsonLine(const std::string& line, TraceEvent* out)
{
    JsonValue v;
    try {
        v = parseJson(line);
    } catch (const std::exception&) {
        return false;
    }
    if (v.type != JsonValue::Type::Object)
        return false;
    const JsonValue* kind = v.find("kind");
    if (!kind || kind->type != JsonValue::Type::String)
        return false;
    TraceEvent ev;
    if (!parseEventKind(kind->string, &ev.kind))
        return false;
    if (const JsonValue* t = v.find("t"))
        ev.time = t->numberOr(0.0);
    if (const JsonValue* sev = v.find("sev")) {
        if (!parseSeverity(sev->string, &ev.severity))
            return false;
    }
    if (const JsonValue* reason = v.find("reason")) {
        if (!parseDecisionReason(reason->string, &ev.reason))
            return false;
    }
    if (const JsonValue* job = v.find("job"))
        ev.job = static_cast<sim::JobId>(job->numberOr(0.0));
    if (const JsonValue* inst = v.find("inst"))
        ev.instance = static_cast<sim::InstanceId>(inst->numberOr(0.0));
    if (const JsonValue* value = v.find("value")) {
        switch (value->type) {
          case JsonValue::Type::Number:
            ev.value = value->number;
            break;
          case JsonValue::Type::String:
            // Inverse of the non-finite encoding above; any other string
            // is a malformed value, not silently 0.
            if (value->string == "NaN")
                ev.value = std::nan("");
            else if (value->string == "Infinity")
                ev.value = std::numeric_limits<double>::infinity();
            else if (value->string == "-Infinity")
                ev.value = -std::numeric_limits<double>::infinity();
            else
                return false;
            break;
          case JsonValue::Type::Null:
            // Legacy writers emitted null for any non-finite value.
            ev.value = std::nan("");
            break;
          default:
            return false;
        }
    }
    if (const JsonValue* detail = v.find("detail"))
        ev.detail = detail->stringOr("");
    if (const JsonValue* trace = v.find("trace"))
        ev.trace = static_cast<std::uint64_t>(trace->numberOr(0.0));
    *out = std::move(ev);
    return true;
}

} // namespace hcloud::obs
