#include "obs/process_metrics.hpp"

#include <algorithm>
#include <functional>
#include <thread>

namespace hcloud::obs {

namespace {

/** Suffix appended when a family name is reused with another kind. */
const char*
kindSuffix(MetricSample::Kind kind)
{
    switch (kind) {
      case MetricSample::Kind::Counter:
        return "_counter";
      case MetricSample::Kind::Gauge:
        return "_gauge";
      case MetricSample::Kind::Histogram:
        return "_histogram";
    }
    return "_unknown";
}

/**
 * Canonical series key for a sanitized, sorted label set. The separators
 * are control characters no sanitized label name can contain, and label
 * values are length-prefixed, so distinct label sets cannot collide.
 */
std::string
seriesKey(const MetricLabels& labels)
{
    std::string key;
    for (const auto& [name, value] : labels) {
        key += name;
        key += '\x1f';
        key += std::to_string(value.size());
        key += '\x1e';
        key += value;
    }
    return key;
}

} // namespace

std::vector<double>
defaultHistogramBounds()
{
    return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
            1.0,   2.5,    5.0,   10.0, 25.0,  50.0, 100.0, 250.0,
            500.0, 1000.0};
}

ProcessHistogram::ProcessHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        bounds_ = defaultHistogramBounds();
    std::sort(bounds_.begin(), bounds_.end());
    bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                  bounds_.end());
    for (Shard& shard : shards_)
        shard.buckets.assign(bounds_.size() + 1, 0);
}

ProcessHistogram::Shard&
ProcessHistogram::localShard()
{
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
}

void
ProcessHistogram::observe(double v)
{
    // First bound >= v is the Prometheus `le` bucket; anything above the
    // ladder (and NaN, which compares false against every bound) lands
    // in the overflow (+Inf) slot, matching client_golang.
    std::size_t idx = bounds_.size();
    if (v == v)
        idx = static_cast<std::size_t>(
            std::lower_bound(bounds_.begin(), bounds_.end(), v) -
            bounds_.begin());
    Shard& shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.buckets[idx] += 1;
    shard.count += 1;
    shard.sum += v;
}

HistogramSnapshot
ProcessHistogram::snapshot() const
{
    HistogramSnapshot out;
    out.bucketCounts.assign(bounds_.size() + 1, 0);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (std::size_t i = 0; i < shard.buckets.size(); ++i)
            out.bucketCounts[i] += shard.buckets[i];
        out.count += shard.count;
        out.sum += shard.sum;
    }
    return out;
}

ProcessMetrics&
ProcessMetrics::instance()
{
    static ProcessMetrics metrics;
    return metrics;
}

ProcessMetrics::Series&
ProcessMetrics::lookup(std::string_view name, std::string_view help,
                       const MetricLabels& labels,
                       MetricSample::Kind kind,
                       std::vector<double> bounds)
{
    std::string family_name = sanitizeMetricName(name);
    MetricLabels sorted;
    sorted.reserve(labels.size());
    for (const auto& [label_name, value] : labels)
        sorted.emplace_back(sanitizeLabelName(label_name), value);
    std::sort(sorted.begin(), sorted.end());

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = families_.find(family_name);
    if (it != families_.end() && it->second.kind != kind) {
        // Same name, different kind: rename deterministically rather
        // than emit an invalid page with two TYPE lines for one name.
        family_name += kindSuffix(kind);
        it = families_.find(family_name);
    }
    if (it == families_.end()) {
        Family family;
        family.kind = kind;
        family.help = std::string(help);
        if (kind == MetricSample::Kind::Histogram)
            family.bounds = bounds.empty() ? defaultHistogramBounds()
                                           : std::move(bounds);
        it = families_.emplace(std::move(family_name), std::move(family))
                 .first;
    } else if (it->second.help.empty() && !help.empty()) {
        it->second.help = std::string(help);
    }

    Family& family = it->second;
    const std::string key = seriesKey(sorted);
    auto sit = family.series.find(key);
    if (sit == family.series.end()) {
        auto series = std::make_unique<Series>();
        series->labels = std::move(sorted);
        if (kind == MetricSample::Kind::Histogram)
            series->histogram =
                std::make_unique<ProcessHistogram>(family.bounds);
        sit = family.series.emplace(key, std::move(series)).first;
    }
    return *sit->second;
}

ProcessCounter&
ProcessMetrics::counter(std::string_view name, std::string_view help,
                        const MetricLabels& labels)
{
    return lookup(name, help, labels, MetricSample::Kind::Counter, {})
        .counter;
}

ProcessGauge&
ProcessMetrics::gauge(std::string_view name, std::string_view help,
                      const MetricLabels& labels)
{
    return lookup(name, help, labels, MetricSample::Kind::Gauge, {}).gauge;
}

ProcessHistogram&
ProcessMetrics::histogram(std::string_view name, std::string_view help,
                          const MetricLabels& labels,
                          std::vector<double> bounds)
{
    return *lookup(name, help, labels, MetricSample::Kind::Histogram,
                   std::move(bounds))
                .histogram;
}

std::vector<ProcessMetrics::FamilySample>
ProcessMetrics::snapshot() const
{
    std::vector<FamilySample> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(families_.size());
    for (const auto& [name, family] : families_) {
        FamilySample fs;
        fs.name = name;
        fs.help = family.help;
        fs.kind = family.kind;
        fs.bounds = family.bounds;
        fs.series.reserve(family.series.size());
        for (const auto& [key, series] : family.series) {
            (void)key;
            SeriesSample ss;
            ss.labels = series->labels;
            switch (family.kind) {
              case MetricSample::Kind::Counter:
                ss.value = series->counter.value();
                break;
              case MetricSample::Kind::Gauge:
                ss.value = series->gauge.value();
                break;
              case MetricSample::Kind::Histogram:
                ss.histogram = series->histogram->snapshot();
                break;
            }
            fs.series.push_back(std::move(ss));
        }
        out.push_back(std::move(fs));
    }
    return out;
}

bool
ProcessMetrics::remove(std::string_view name, const MetricLabels& labels)
{
    const std::string family_name = sanitizeMetricName(name);
    MetricLabels sorted;
    sorted.reserve(labels.size());
    for (const auto& [label_name, value] : labels)
        sorted.emplace_back(sanitizeLabelName(label_name), value);
    std::sort(sorted.begin(), sorted.end());
    const std::string key = seriesKey(sorted);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = families_.find(family_name);
    if (it == families_.end())
        return false;
    auto sit = it->second.series.find(key);
    if (sit == it->second.series.end())
        return false;
    retired_.push_back(std::move(sit->second));
    it->second.series.erase(sit);
    return true;
}

std::size_t
ProcessMetrics::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [name, family] : families_) {
        (void)name;
        n += family.series.size();
    }
    return n;
}

} // namespace hcloud::obs
