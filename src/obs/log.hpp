/**
 * @file
 * obs::Log — structured, leveled, rate-limited JSONL logging.
 *
 * One line per record: {"ts":<unix seconds>,"level":"...","event":"...",
 * ...caller fields}. The daemon logs operational facts through this
 * (listen address, slow requests, shutdown); nothing in the hot path
 * logs per-request at Info.
 *
 * Rate limiting is a token bucket (maxPerSec sustained, burst ceiling)
 * applied to Debug/Info/Warn; Error always passes. Suppressed records
 * are counted and surfaced as a single "log_suppressed" line the next
 * time a record passes, so bursts can't silently hide volume.
 *
 * The default stream is stderr; tests redirect via setStream(). Writes
 * happen under a mutex with one fwrite per line, so concurrent callers
 * never interleave bytes.
 */

#ifndef HCLOUD_OBS_LOG_HPP
#define HCLOUD_OBS_LOG_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string_view>

namespace hcloud::obs {

class JsonWriter;

enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

const char* toString(LogLevel level);

/** Logger knobs. */
struct LogConfig
{
    LogLevel minLevel = LogLevel::Info;
    /** Sustained records/second admitted below Error (0 = unlimited). */
    double maxPerSec = 50.0;
    /** Token-bucket ceiling for bursts. */
    double burst = 100.0;
};

/** Process-wide structured logger (singleton + injectable instances). */
class Log
{
  public:
    explicit Log(LogConfig config = {});

    Log(const Log&) = delete;
    Log& operator=(const Log&) = delete;

    /** The daemon-wide logger. */
    static Log& instance();

    /**
     * Emit one record. @p fields appends extra key/value pairs to the
     * open top-level object (may be empty). Returns false when the
     * record was filtered (level) or suppressed (rate limit).
     */
    bool write(LogLevel level, std::string_view event,
               const std::function<void(JsonWriter&)>& fields = {});

    bool debug(std::string_view event,
               const std::function<void(JsonWriter&)>& fields = {})
    {
        return write(LogLevel::Debug, event, fields);
    }
    bool info(std::string_view event,
              const std::function<void(JsonWriter&)>& fields = {})
    {
        return write(LogLevel::Info, event, fields);
    }
    bool warn(std::string_view event,
              const std::function<void(JsonWriter&)>& fields = {})
    {
        return write(LogLevel::Warn, event, fields);
    }
    bool error(std::string_view event,
               const std::function<void(JsonWriter&)>& fields = {})
    {
        return write(LogLevel::Error, event, fields);
    }

    /** Redirect output (tests); nullptr restores stderr. */
    void setStream(std::FILE* stream);

    void setMinLevel(LogLevel level);

    /** Records dropped by the rate limiter so far. */
    std::uint64_t suppressed() const;

    /** Records written so far. */
    std::uint64_t written() const;

  private:
    LogConfig config_;
    mutable std::mutex mutex_;
    std::FILE* stream_ = nullptr; // nullptr = stderr
    double tokens_;
    std::uint64_t lastRefillNs_ = 0;
    std::uint64_t suppressed_ = 0;
    std::uint64_t written_ = 0;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_LOG_HPP
