/**
 * @file
 * Tracer: bounded, filtered collection of TraceEvents during a run.
 *
 * Design constraints:
 *  - near-zero cost when disabled: the emit helpers check one bool
 *    before building an event, so a disabled tracer costs a predicted
 *    branch per call site;
 *  - bounded memory: a ring of `ringCapacity` events; once full, the
 *    oldest event is dropped (and counted) per new event — unless a
 *    TraceSink is attached (TraceConfig::sinkPath), in which case the
 *    ring is drained to the sink on wrap (and at take()) so the on-disk
 *    stream is complete and `dropped` stays 0;
 *  - deterministic: the tracer is owned by one engine run and recorded
 *    from the single-threaded simulation loop, so for a fixed root seed
 *    the event stream is bit-identical at any runner thread count —
 *    wall-clock never enters an event.
 *
 * Enablement mirrors HCLOUD_THREADS: EngineConfig carries a TraceConfig
 * whose Auto mode defers to the HCLOUD_TRACE environment variable
 * (unset/"0"/"off" = disabled; "1"/"on"/"true" = enabled; any other
 * value = enabled, and names a default JSONL output path for benches).
 */

#ifndef HCLOUD_OBS_TRACER_HPP
#define HCLOUD_OBS_TRACER_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_event.hpp"

namespace hcloud::obs {

class TraceSink;

/** Tracing knobs, embedded in core::EngineConfig. */
struct TraceConfig
{
    enum class Mode
    {
        Auto, ///< follow the HCLOUD_TRACE environment variable
        Off,
        On,
    };

    Mode mode = Mode::Auto;
    /** Ring size in events; the oldest event is dropped when full. */
    std::size_t ringCapacity = 1u << 16;
    /** Events below this severity are not recorded. */
    Severity minSeverity = Severity::Debug;
    /** Only categories whose bit is set are recorded. */
    unsigned categoryMask = kAllCategories;

    /**
     * When non-empty, this run's events stream to a JSONL TraceSink at
     * exactly this path: the ring becomes a flush buffer and `dropped`
     * stays 0, so traces are bounded only by disk. One run must own the
     * path exclusively — for runner-driven sweeps use sinkStem instead.
     */
    std::string sinkPath;
    /**
     * Per-run sink derivation stem for exp::Runner sweeps: each run the
     * runner executes derives its own sinkPath ("<stem>.<tag>.part"),
     * and exp::writeTraceJsonl merges the parts in deterministic result
     * order. Ignored by the tracer itself when sinkPath is empty.
     */
    std::string sinkStem;

    /** Resolve mode (consulting the environment under Auto). */
    bool resolveEnabled() const;
};

/** True when HCLOUD_TRACE asks for tracing. */
bool envTraceEnabled();

/**
 * JSONL output path carried by HCLOUD_TRACE, when its value is neither a
 * boolean-ish token nor empty; "" otherwise.
 */
std::string envTracePath();

/** The recorded stream plus bookkeeping, as stored in a RunResult. */
struct TraceBuffer
{
    /** Retained in-memory events in chronological record order (empty
     *  when the full stream went to a sink file instead). */
    std::vector<TraceEvent> events;
    /** Events accepted by the filters (>= events.size()). */
    std::uint64_t recorded = 0;
    /** Events evicted by the ring bound (0 whenever a sink is healthy). */
    std::uint64_t dropped = 0;
    /** Sink file holding the complete stream ("" = ring-only run). */
    std::string sinkPath;
    /** Events flushed to the sink (== recorded while sinkOk). */
    std::uint64_t flushed = 0;
    /** False when a sink was requested but opening/writing it failed —
     *  the events above then hold the ring-bounded fallback. */
    bool sinkOk = true;
};

/**
 * Collects TraceEvents for one engine run. Not thread-safe; each run
 * owns its own tracer (which is what makes parallel sweeps TSan-clean).
 */
class Tracer
{
  public:
    explicit Tracer(TraceConfig config = {});
    ~Tracer();

    bool enabled() const { return enabled_; }
    const TraceConfig& config() const { return config_; }

    /** The attached sink, or nullptr (disabled, none configured, or the
     *  sink broke and the tracer fell back to ring eviction). */
    const TraceSink* sink() const { return sink_.get(); }

    /** Record one event (applies severity/category filters and the ring
     *  bound). No-op when disabled. */
    void record(TraceEvent event);

    /**
     * Stamp every subsequently recorded event with span trace id
     * @p trace (0 clears). srv::EngineSession sets this around each
     * session-mode call so trace_inspect can join wire requests to
     * their provisioning decisions; batch runs never set it, keeping
     * their JSONL byte-identical.
     */
    void setActiveTrace(std::uint64_t trace) { activeTrace_ = trace; }
    std::uint64_t activeTrace() const { return activeTrace_; }

    /**
     * Install an observer invoked for every event that passes the
     * severity/category filters, before the event enters the ring (so it
     * sees events a full ring would evict). The observer runs on the
     * recording thread — the simulation loop — and must be cheap and
     * must not call back into the tracer. One observer at most;
     * pass nullptr to remove. srv::EngineSession uses this to harvest
     * provisioning decisions without keeping the whole ring alive.
     */
    void setOnRecord(std::function<void(const TraceEvent&)> observer)
    {
        onRecord_ = std::move(observer);
    }

    // Convenience emitters; each checks enabled() before building the
    // event so disabled call sites stay cheap.
    void job(EventKind kind, sim::Time t, sim::JobId id,
             double value = 0.0, std::string_view detail = {},
             Severity severity = Severity::Info)
    {
        if (!enabled_)
            return;
        emit(kind, severity, DecisionReason::None, t, id, 0, value,
             detail);
    }

    void instance(EventKind kind, sim::Time t, sim::InstanceId id,
                  double value = 0.0, std::string_view detail = {},
                  Severity severity = Severity::Info)
    {
        if (!enabled_)
            return;
        emit(kind, severity, DecisionReason::None, t, 0, id, value,
             detail);
    }

    void decision(sim::Time t, DecisionReason reason, sim::JobId job = 0,
                  sim::InstanceId instance = 0, double value = 0.0,
                  std::string_view detail = {},
                  Severity severity = Severity::Info)
    {
        if (!enabled_)
            return;
        emit(EventKind::Decision, severity, reason, t, job, instance,
             value, detail);
    }

    void controller(EventKind kind, sim::Time t, double value,
                    std::string_view detail = {},
                    Severity severity = Severity::Debug)
    {
        if (!enabled_)
            return;
        emit(kind, severity, DecisionReason::None, t, 0, 0, value,
             detail);
    }

    /** Events retained so far (chronological). */
    const std::vector<TraceEvent>& events() const { return events_; }
    std::uint64_t recordedCount() const { return recorded_; }
    std::uint64_t droppedCount() const { return dropped_; }

    /**
     * Move the collected stream out (the tracer is then empty). With a
     * sink attached, the remaining ring contents are flushed first and
     * the sink file is closed; the returned buffer then carries the sink
     * path instead of in-memory events.
     */
    TraceBuffer take();

    /**
     * Re-arm the tracer for a new run under @p config: counters reset,
     * any open sink is closed and a new one opened per the config, the
     * record observer and active span trace are cleared. The in-memory
     * ring keeps whatever capacity it already grew, so engine-reuse
     * sweeps (core::EngineRun::reset) never reallocate it. Events still
     * held (take() not called) are discarded.
     */
    void reset(TraceConfig config);

  private:
    void emit(EventKind kind, Severity severity, DecisionReason reason,
              sim::Time t, sim::JobId job, sim::InstanceId instance,
              double value, std::string_view detail);
    /** Drain the ring (chronological order) into the sink; on failure
     *  drops the sink and latches sinkFailed_. */
    void flushRingToSink();

    TraceConfig config_;
    bool enabled_;
    std::vector<TraceEvent> events_;
    /** Index of the chronologically-oldest event once the ring wrapped. */
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::unique_ptr<TraceSink> sink_;
    /** A sink was requested but could not be opened or written. */
    bool sinkFailed_ = false;
    /** Span trace id stamped onto recorded events (0 = none). */
    std::uint64_t activeTrace_ = 0;
    /** Post-filter observer (see setOnRecord). */
    std::function<void(const TraceEvent&)> onRecord_;
};

/** Serialize @p event as a single JSON object (no trailing newline). */
std::string toJson(const TraceEvent& event);

/** Write one event per line. */
void writeJsonl(std::ostream& out, const TraceBuffer& buffer);

/**
 * Parse @p line (as produced by toJson) back into an event.
 * @return false when the line is not a trace event (e.g. a run header).
 */
bool eventFromJsonLine(const std::string& line, TraceEvent* out);

} // namespace hcloud::obs

#endif // HCLOUD_OBS_TRACER_HPP
