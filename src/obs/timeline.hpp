/**
 * @file
 * Timeline: bounded, sink-backed sampling of simulated-cluster state.
 *
 * The decision trace (tracer.hpp) records what the engine *did*; the
 * timeline records what the cluster *looked like* while it did it — one
 * TimelineSample per sampling tick with instance counts by market and
 * type, effective-quality percentiles, queue depth, external-load
 * pressure, spot price and accumulated cost. Figure-style aggregations,
 * replay diffs and live gauges all read this stream instead of
 * reconstructing state post-hoc.
 *
 * Contracts (shared with Tracer/TraceSink):
 *  - near-zero cost when disabled: the engine checks one bool before
 *    building a sample, so a disabled timeline costs a predicted branch
 *    per tick and allocates nothing;
 *  - bounded memory: a ring of `ringCapacity` samples; once full, the
 *    oldest sample is dropped (and counted) — unless a sink is attached
 *    (TimelineConfig::sinkPath), in which case the ring drains to disk on
 *    wrap (and at take()) so the stream is complete and `dropped` stays 0;
 *  - deterministic and *perturbation-free*: samples are built exclusively
 *    from read-only accessors (memoized quality/load values, OuProcess
 *    value() without advanceTo()), so enabling the timeline cannot move a
 *    single RNG draw — the decision trace stays byte-identical with the
 *    timeline on or off, and the sample stream itself is byte-identical
 *    across runner thread counts and between batch and session driving.
 *
 * Enablement mirrors HCLOUD_TRACE: Mode Auto defers to HCLOUD_TIMELINE
 * (unset/"0"/"off" = disabled; "1"/"on"/"true" = enabled; any other value
 * = enabled, and names a default JSONL output path for benches).
 */

#ifndef HCLOUD_OBS_TIMELINE_HPP
#define HCLOUD_OBS_TIMELINE_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace hcloud::obs {

class TraceSink;
class JsonWriter;
struct JsonValue;

/** Timeline knobs, embedded in core::EngineConfig. */
struct TimelineConfig
{
    enum class Mode
    {
        Auto, ///< follow the HCLOUD_TIMELINE environment variable
        Off,
        On,
    };

    Mode mode = Mode::Auto;
    /** Virtual-time sampling period in seconds. Samples land on the first
     *  engine tick at or after each cadence boundary, so for a fixed tick
     *  the sample times are identical in batch and session driving. */
    sim::Duration cadence = 30.0;
    /** Ring size in samples; the oldest sample is dropped when full. */
    std::size_t ringCapacity = 1u << 12;
    /** When non-empty, samples stream to a JSONL sink at exactly this
     *  path and `dropped` stays 0 (same exclusivity contract as
     *  TraceConfig::sinkPath). */
    std::string sinkPath;
    /** Per-run sink derivation stem for exp::Runner sweeps (the runner
     *  derives "<stem>.<tag>.part"; exp::writeTimelineJsonl merges). */
    std::string sinkStem;

    /** Resolve mode (consulting the environment under Auto). */
    bool resolveEnabled() const;
};

/** True when HCLOUD_TIMELINE asks for timeline sampling. */
bool envTimelineEnabled();

/**
 * JSONL output path carried by HCLOUD_TIMELINE, when its value is neither
 * a boolean-ish token nor empty; "" otherwise.
 */
std::string envTimelinePath();

/**
 * Sampling cadence carried by HCLOUD_TIMELINE_CADENCE (virtual seconds),
 * or @p fallback when unset/unparsable/non-positive. Applied at the CLI
 * edge only — engine behaviour never reads it directly, so journaled
 * daemon sessions replay with their recorded cadence.
 */
sim::Duration envTimelineCadence(sim::Duration fallback);

/** One cluster-state snapshot at virtual time t. */
struct TimelineSample
{
    sim::Time t = 0.0;
    /** 0-based sample index within the run (the since-cursor key). */
    std::uint64_t seq = 0;

    // Instances by market.
    std::uint32_t reservedInstances = 0;
    std::uint32_t onDemandInstances = 0;
    std::uint32_t spotInstances = 0;
    /** Live instance counts by catalog type name, sorted by name;
     *  zero-count types are omitted. */
    std::vector<std::pair<std::string, std::uint32_t>> typeCounts;

    // Capacity and usage, in cores.
    double reservedCores = 0.0;
    double reservedUsed = 0.0;
    double onDemandCores = 0.0;
    double onDemandUsed = 0.0;
    /** Reserved-pool utilization in [0, 1] (0 with no pool). */
    double utilization = 0.0;

    // Effective-quality distribution over live cluster instances
    // (memoized per-tick values; never advances a quality process).
    double qualityMean = 0.0;
    double qualityP5 = 0.0;
    double qualityP50 = 0.0;
    double qualityP95 = 0.0;

    // Load.
    std::uint32_t queueLength = 0; ///< jobs queued for the reserved pool
    std::uint32_t activeJobs = 0;  ///< started and not yet finished
    std::uint32_t runningJobs = 0; ///< actively progressing
    std::uint64_t finishedJobs = 0;
    /** Mean external-tenant utilization over the distinct physical hosts
     *  backing cluster instances (dedicated hosts report residual
     *  network load only). */
    double externalLoad = 0.0;
    /** Spot price for the full-server class, as a fraction of the
     *  on-demand rate (last materialized market value). */
    double spotPrice = 0.0;
    /** Jobs currently inside a QoS-violation streak. */
    std::uint32_t qosTracked = 0;
    /** Accumulated cost so far, amortized-reservation view ($). */
    double costTotal = 0.0;
};

/** The recorded stream plus bookkeeping, as stored in a RunResult. */
struct TimelineBuffer
{
    /** Retained in-memory samples in chronological order (empty when the
     *  full stream went to a sink file instead). */
    std::vector<TimelineSample> samples;
    /** Samples accepted by record() (>= samples.size()). */
    std::uint64_t recorded = 0;
    /** Samples evicted by the ring bound (0 whenever a sink is healthy). */
    std::uint64_t dropped = 0;
    /** Sink file holding the complete stream ("" = ring-only run). */
    std::string sinkPath;
    /** Samples flushed to the sink (== recorded while sinkOk). */
    std::uint64_t flushed = 0;
    /** False when a sink was requested but opening/writing it failed —
     *  the samples above then hold the ring-bounded fallback. */
    bool sinkOk = true;
    /** The cadence the run sampled at (virtual seconds). */
    sim::Duration cadence = 0.0;
};

/**
 * Collects TimelineSamples for one engine run. Not thread-safe; each run
 * owns its own timeline (parallel sweeps stay TSan-clean for free).
 */
class Timeline
{
  public:
    explicit Timeline(TimelineConfig config = {});
    ~Timeline();

    Timeline(const Timeline&) = delete;
    Timeline& operator=(const Timeline&) = delete;

    bool enabled() const { return enabled_; }
    const TimelineConfig& config() const { return config_; }

    /** The attached sink, or nullptr (disabled, none configured, or the
     *  sink broke and the timeline fell back to ring eviction). */
    const TraceSink* sink() const { return sink_.get(); }

    /** Record one sample (stamps seq; applies the ring bound).
     *  No-op when disabled. */
    void record(TimelineSample sample);

    /** Samples retained so far (raw ring storage; use since()/latest()
     *  for chronological access once the ring may have wrapped). */
    const std::vector<TimelineSample>& samples() const { return samples_; }
    std::uint64_t recordedCount() const { return recorded_; }
    std::uint64_t droppedCount() const { return dropped_; }

    /** Copy the most recent sample into @p out.
     *  @return false when nothing has been recorded (or all evicted). */
    bool latest(TimelineSample* out) const;

    /**
     * Retained samples with seq >= @p sinceSeq, downsampled to every
     * @p stride-th sample (seq % stride == 0, so a fixed stride selects
     * the same samples regardless of cursor position), capped at
     * @p maxSamples. stride < 1 is treated as 1.
     */
    std::vector<TimelineSample> since(std::uint64_t sinceSeq,
                                      std::uint64_t stride,
                                      std::size_t maxSamples) const;

    /** Non-destructive buffer snapshot (sink stays open; liveResult). */
    TimelineBuffer snapshot() const;

    /**
     * Move the collected stream out (the timeline is then empty). With a
     * sink attached, the remaining ring contents are flushed first and
     * the sink file is closed; the returned buffer then carries the sink
     * path instead of in-memory samples.
     */
    TimelineBuffer take();

    /**
     * Re-arm the timeline for a new run under @p config: counters reset,
     * any open sink is closed and a new one opened per the config. The
     * sample ring keeps its grown capacity (core::EngineRun::reset).
     * Samples still held (take() not called) are discarded.
     */
    void reset(TimelineConfig config);

  private:
    /** Drain the ring (chronological order) into the sink; on failure
     *  drops the sink and latches sinkFailed_. */
    void flushRingToSink();
    /** Chronological copy of the (possibly wrapped) ring. */
    std::vector<TimelineSample> chronological() const;

    TimelineConfig config_;
    bool enabled_;
    std::vector<TimelineSample> samples_;
    /** Index of the chronologically-oldest sample once the ring wrapped. */
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::unique_ptr<TraceSink> sink_;
    /** A sink was requested but could not be opened or written. */
    bool sinkFailed_ = false;
};

/**
 * Write @p sample's fields into an already-open JSON object. Shared by
 * toJson() (JSONL sinks), the report writer and the daemon's timeline
 * endpoint so every surface emits byte-identical sample text.
 */
void timelineSampleJson(JsonWriter& w, const TimelineSample& sample);

/** Serialize @p sample as a single JSON object (no trailing newline). */
std::string toJson(const TimelineSample& sample);

/** Write one sample per line. */
void writeJsonl(std::ostream& out, const TimelineBuffer& buffer);

/** Parse a sample out of an already-parsed JSON object.
 *  @return false when @p v is not a timeline sample. */
bool sampleFromJson(const JsonValue& v, TimelineSample* out);

/**
 * Parse @p line (as produced by toJson) back into a sample.
 * @return false when the line is not a timeline sample (e.g. a run
 * header).
 */
bool sampleFromJsonLine(const std::string& line, TimelineSample* out);

} // namespace hcloud::obs

#endif // HCLOUD_OBS_TIMELINE_HPP
