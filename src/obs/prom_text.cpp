#include "obs/prom_text.hpp"

#include <cmath>
#include <cstdint>

#include "obs/json.hpp"

namespace hcloud::obs {

namespace {

/**
 * Append one series line: `name{labels} value`. @p extraLabel carries the
 * histogram `le` pair (rendered last, pre-escaped by the caller).
 */
void
appendSeries(std::string& out, std::string_view name,
             const MetricLabels& labels, std::string_view extraLabel,
             std::string_view value)
{
    out += name;
    if (!labels.empty() || !extraLabel.empty()) {
        out += '{';
        bool first = true;
        for (const auto& [label_name, label_value] : labels) {
            if (!first)
                out += ',';
            first = false;
            out += label_name;
            out += "=\"";
            out += promEscapeLabelValue(label_value);
            out += '"';
        }
        if (!extraLabel.empty()) {
            if (!first)
                out += ',';
            out += extraLabel;
        }
        out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
}

void
appendHistogram(std::string& out,
                const ProcessMetrics::FamilySample& family,
                const ProcessMetrics::SeriesSample& series)
{
    std::uint64_t cumulative = 0;
    const HistogramSnapshot& hist = series.histogram;
    for (std::size_t i = 0; i < family.bounds.size(); ++i) {
        if (i < hist.bucketCounts.size())
            cumulative += hist.bucketCounts[i];
        appendSeries(out, family.name + "_bucket", series.labels,
                     "le=\"" + promFormatValue(family.bounds[i]) + "\"",
                     std::to_string(cumulative));
    }
    appendSeries(out, family.name + "_bucket", series.labels,
                 "le=\"+Inf\"", std::to_string(hist.count));
    appendSeries(out, family.name + "_sum", series.labels, {},
                 promFormatValue(hist.sum));
    appendSeries(out, family.name + "_count", series.labels, {},
                 std::to_string(hist.count));
}

} // namespace

std::string
promEscapeLabelValue(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
promEscapeHelp(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
promFormatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    // Integral values render as plain integers: the shortest-precision
    // formatter would pick "5e+03" over "5000", which round-trips but
    // reads badly on a counter page.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        return std::to_string(static_cast<long long>(v));
    return formatDouble(v);
}

std::string
renderPromText(const std::vector<ProcessMetrics::FamilySample>& families)
{
    std::string out;
    for (const ProcessMetrics::FamilySample& family : families) {
        if (!family.help.empty()) {
            out += "# HELP ";
            out += family.name;
            out += ' ';
            out += promEscapeHelp(family.help);
            out += '\n';
        }
        out += "# TYPE ";
        out += family.name;
        out += ' ';
        out += toString(family.kind);
        out += '\n';
        for (const ProcessMetrics::SeriesSample& series : family.series) {
            if (family.kind == MetricSample::Kind::Histogram)
                appendHistogram(out, family, series);
            else
                appendSeries(out, family.name, series.labels, {},
                             promFormatValue(series.value));
        }
    }
    return out;
}

std::string
renderPromText(const ProcessMetrics& metrics)
{
    return renderPromText(metrics.snapshot());
}

} // namespace hcloud::obs
