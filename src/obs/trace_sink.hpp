/**
 * @file
 * TraceSink: incremental, fd-backed JSONL persistence for trace events.
 *
 * The sink exists so traces of long runs are bounded only by disk, never
 * by the tracer's ringCapacity: the owning obs::Tracer drains its ring
 * into the sink whenever the ring would wrap (and once more at take()),
 * so `dropped` stays 0 for the whole run while in-memory cost stays at
 * ringCapacity events.
 *
 * Contracts:
 *  - one sink file per run (the tracer that opens it is single-threaded,
 *    so the sink needs no locking);
 *  - append() serializes with toJson(), whose deterministic number
 *    formatting keeps sink files byte-identical across thread counts for
 *    a fixed seed;
 *  - writes are buffered in memory and pushed through the file
 *    descriptor in large chunks; any short write or I/O error latches
 *    ok() to false, after which the tracer falls back to plain
 *    ring-eviction semantics (and reports the failure in TraceBuffer).
 */

#ifndef HCLOUD_OBS_TRACE_SINK_HPP
#define HCLOUD_OBS_TRACE_SINK_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/trace_event.hpp"

namespace hcloud::obs {

/** Streams TraceEvents to a JSONL file, one line per event. */
class TraceSink
{
  public:
    /** Opens (creates/truncates) @p path; check ok() afterwards. */
    explicit TraceSink(std::string path);
    ~TraceSink();

    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /** False once the file failed to open or a write failed. */
    bool ok() const { return fd_ >= 0 && !failed_; }
    const std::string& path() const { return path_; }

    /** Serialize @p event and buffer it for writing.
     *  @return false when the sink is (or just became) broken. */
    bool append(const TraceEvent& event);

    /** Buffer one pre-serialized JSONL line (no trailing newline —
     *  the sink adds it). The span tracer streams through this seam.
     *  @return false when the sink is (or just became) broken. */
    bool appendLine(std::string_view line);

    /** Drain the in-memory buffer through the descriptor. */
    bool flush();

    /** Events successfully handed to append(). */
    std::uint64_t written() const { return written_; }

  private:
    bool drain();

    std::string path_;
    int fd_ = -1;
    std::string buffer_;
    std::uint64_t written_ = 0;
    bool failed_ = false;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_TRACE_SINK_HPP
