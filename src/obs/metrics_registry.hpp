/**
 * @file
 * MetricsRegistry: named counters, gauges and histograms for one run.
 *
 * The registry replaces ad-hoc counter members scattered across
 * collectors: call sites hold a pointer to a registered metric (stable —
 * metrics live in node-based maps) and the end-of-run snapshot
 * enumerates everything in sorted name order, so serialized output is
 * deterministic by construction.
 */

#ifndef HCLOUD_OBS_METRICS_REGISTRY_HPP
#define HCLOUD_OBS_METRICS_REGISTRY_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace hcloud::obs {

/** True when @p name matches Prometheus `[a-zA-Z_:][a-zA-Z0-9_:]*`. */
bool isValidMetricName(std::string_view name);

/**
 * Deterministic Prometheus-legal form of @p name: illegal characters
 * become '_', a leading digit gains a '_' prefix, and the empty name
 * becomes "_". Valid names (the common case) pass through unchanged, so
 * callers using legal names never pay an allocation beyond the copy.
 */
std::string sanitizeMetricName(std::string_view name);

/** Like sanitizeMetricName but for label names (colons are illegal). */
std::string sanitizeLabelName(std::string_view name);

/** Monotonically increasing count. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-write-wins scalar. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Sample distribution (SampleSet-backed: mean/quantiles/boxplot). */
class HistogramMetric
{
  public:
    void observe(double v) { samples_.add(v); }
    const sim::SampleSet& samples() const { return samples_; }

  private:
    sim::SampleSet samples_;
};

/** One row of a registry snapshot. */
struct MetricSample
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    Kind kind = Kind::Counter;
    /** Counter/gauge value; histogram mean. */
    double value = 0.0;
    /** Counter value; histogram observation count. */
    std::uint64_t count = 0;
    // Histogram quantiles (0 otherwise).
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

const char* toString(MetricSample::Kind kind);

using MetricsSnapshot = std::vector<MetricSample>;

/**
 * Registry of named metrics. Lookup creates on first use; returned
 * references stay valid for the registry's lifetime.
 *
 * Names are sanitized through sanitizeMetricName() before lookup, so a
 * registry can never hold an empty or Prometheus-illegal name: lookups
 * of "strategy acquisitions" and "strategy_acquisitions" deterministically
 * resolve to the same metric. Valid names skip the sanitation allocation.
 */
class MetricsRegistry
{
  public:
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    HistogramMetric& histogram(std::string_view name);

    /** Every metric, sorted by (name, kind) — deterministic. */
    MetricsSnapshot snapshot() const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

  private:
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, HistogramMetric, std::less<>> histograms_;
};

} // namespace hcloud::obs

#endif // HCLOUD_OBS_METRICS_REGISTRY_HPP
