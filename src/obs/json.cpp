#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hcloud::obs {

std::string
formatDouble(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        return "null";
    }
    char buf[40];
    // Shortest precision that survives a strtod round trip; 17 always
    // does (IEEE-754 double), shorter usually suffices and reads better.
    // Round-tripping is monotone in precision (more digits parse back
    // at least as close), so binary search finds the same minimal
    // precision as a linear scan — identical bytes, ~5 probes instead
    // of up to 17 (this sits on the report/trace/journal hot paths).
    int lo = 1, hi = 17;
    while (lo < hi) {
        const int mid = (lo + hi) / 2;
        std::snprintf(buf, sizeof(buf), "%.*g", mid, v);
        if (std::strtod(buf, nullptr) == v)
            hi = mid;
        else
            lo = mid + 1;
    }
    std::snprintf(buf, sizeof(buf), "%.*g", lo, v);
    return buf;
}

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already placed the comma
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    needComma_.pop_back();
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    needComma_.pop_back();
    out_ += ']';
}

void
JsonWriter::key(std::string_view name)
{
    comma();
    out_ += '"';
    out_ += escapeJson(name);
    out_ += "\":";
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    comma();
    out_ += '"';
    out_ += escapeJson(s);
    out_ += '"';
}

void
JsonWriter::value(double v)
{
    comma();
    if (rawDoubles_ && std::isfinite(v)) {
        // Shortest round-trip via to_chars: ~10x cheaper than the
        // snprintf/strtod search, different bytes (exponent style).
        char buf[40];
        const auto res = std::to_chars(buf, buf + sizeof(buf), v);
        out_.append(buf, static_cast<std::size_t>(res.ptr - buf));
        return;
    }
    out_ += formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += std::to_string(v);
}

void
JsonWriter::value(std::int64_t v)
{
    comma();
    out_ += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
}

void
JsonWriter::valueNull()
{
    comma();
    out_ += "null";
}

const JsonValue*
JsonValue::find(std::string_view name) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto& [key, value] : object) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const char* what)
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // The writer only escapes control characters; decode
                // basic-plane codepoints as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue parseValue()
    {
        skipWs();
        JsonValue v;
        char c = peek();
        if (c == '{') {
            ++pos_;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.object.emplace_back(std::move(key), parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos_;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        // Number.
        const char* start = text_.data() + pos_;
        char* end = nullptr;
        v.number = std::strtod(start, &end);
        if (end == start)
            fail("expected a value");
        v.type = JsonValue::Type::Number;
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace hcloud::obs
