#include "obs/timeline.hpp"

#include <cstdlib>
#include <ostream>

#include "obs/json.hpp"
#include "obs/process_metrics.hpp"
#include "obs/trace_sink.hpp"

namespace hcloud::obs {

namespace {

/**
 * Fold one harvested timeline buffer into the process registry.
 * Publishing happens at take(), not per record(): the record path runs
 * once per sampling tick and must stay free of shared-cache traffic.
 */
void
publishTimelineBuffer(const TimelineBuffer& buffer)
{
    ProcessMetrics& pm = ProcessMetrics::instance();
    pm.counter("hcloud_timeline_samples_recorded_total",
               "Timeline samples recorded by engine runs")
        .inc(static_cast<double>(buffer.recorded));
    pm.counter("hcloud_timeline_samples_dropped_total",
               "Timeline samples evicted from a full ring (no sink)")
        .inc(static_cast<double>(buffer.dropped));
    pm.gauge("hcloud_timeline_ring_occupancy",
             "In-memory samples in the most recently harvested ring")
        .set(static_cast<double>(buffer.samples.size()));
    pm.gauge("hcloud_timeline_sink_ok",
             "1 when the last harvested timeline's sink was healthy")
        .set(buffer.sinkOk ? 1.0 : 0.0);
}

const char*
envTimelineValue()
{
    return std::getenv("HCLOUD_TIMELINE");
}

bool
isOffToken(std::string_view v)
{
    return v.empty() || v == "0" || v == "off" || v == "false";
}

bool
isOnToken(std::string_view v)
{
    return v == "1" || v == "on" || v == "true";
}

} // namespace

bool
envTimelineEnabled()
{
    const char* v = envTimelineValue();
    return v && !isOffToken(v);
}

std::string
envTimelinePath()
{
    const char* v = envTimelineValue();
    if (!v || isOffToken(v) || isOnToken(v))
        return "";
    return v;
}

sim::Duration
envTimelineCadence(sim::Duration fallback)
{
    const char* v = std::getenv("HCLOUD_TIMELINE_CADENCE");
    if (!v || *v == '\0')
        return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || !(parsed > 0.0))
        return fallback;
    return parsed;
}

bool
TimelineConfig::resolveEnabled() const
{
    switch (mode) {
      case Mode::Off:
        return false;
      case Mode::On:
        return true;
      case Mode::Auto:
        return envTimelineEnabled();
    }
    return false;
}

Timeline::Timeline(TimelineConfig config)
    : config_(std::move(config)), enabled_(config_.resolveEnabled())
{
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
    if (enabled_ && !config_.sinkPath.empty()) {
        sink_ = std::make_unique<TraceSink>(config_.sinkPath);
        if (!sink_->ok()) {
            // Unopenable sink: fall back to the in-memory ring so the
            // run still samples; take() reports the failure.
            sink_.reset();
            sinkFailed_ = true;
        }
    }
}

Timeline::~Timeline() = default;

void
Timeline::reset(TimelineConfig config)
{
    sink_.reset(); // closes any previous sink file
    config_ = std::move(config);
    enabled_ = config_.resolveEnabled();
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
    samples_.clear(); // keeps the ring's grown capacity
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    sinkFailed_ = false;
    if (enabled_ && !config_.sinkPath.empty()) {
        sink_ = std::make_unique<TraceSink>(config_.sinkPath);
        if (!sink_->ok()) {
            sink_.reset();
            sinkFailed_ = true;
        }
    }
}

void
Timeline::record(TimelineSample sample)
{
    if (!enabled_)
        return;
    sample.seq = recorded_;
    ++recorded_;
    if (samples_.size() < config_.ringCapacity) {
        samples_.push_back(std::move(sample));
        return;
    }
    if (sink_) {
        // Ring wrap with a sink attached: drain the ring to disk instead
        // of evicting, so the on-disk stream stays complete.
        flushRingToSink();
        if (samples_.empty()) {
            samples_.push_back(std::move(sample));
            return;
        }
        // The flush failed mid-write; fall through to ring eviction.
    }
    // Ring full: overwrite the oldest slot.
    samples_[head_] = std::move(sample);
    head_ = (head_ + 1) % config_.ringCapacity;
    ++dropped_;
}

void
Timeline::flushRingToSink()
{
    // With a healthy sink the ring never wraps (head_ == 0), but flush in
    // chronological order anyway so a mid-run fallback stays consistent.
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const TimelineSample& s = samples_[(head_ + i) % samples_.size()];
        if (!sink_->appendLine(toJson(s))) {
            // Keep the unflushed tail: rotate it to the front and resume
            // ring semantics from there.
            std::vector<TimelineSample> tail;
            tail.reserve(samples_.size() - i);
            for (std::size_t j = i; j < samples_.size(); ++j)
                tail.push_back(
                    std::move(samples_[(head_ + j) % samples_.size()]));
            samples_ = std::move(tail);
            head_ = 0;
            sink_.reset();
            sinkFailed_ = true;
            return;
        }
    }
    samples_.clear();
    head_ = 0;
}

std::vector<TimelineSample>
Timeline::chronological() const
{
    std::vector<TimelineSample> out;
    out.reserve(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        out.push_back(samples_[(head_ + i) % samples_.size()]);
    return out;
}

bool
Timeline::latest(TimelineSample* out) const
{
    if (samples_.empty())
        return false;
    const std::size_t last =
        (head_ + samples_.size() - 1) % samples_.size();
    *out = samples_[last];
    return true;
}

std::vector<TimelineSample>
Timeline::since(std::uint64_t sinceSeq, std::uint64_t stride,
                std::size_t maxSamples) const
{
    if (stride < 1)
        stride = 1;
    std::vector<TimelineSample> out;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const TimelineSample& s = samples_[(head_ + i) % samples_.size()];
        if (s.seq < sinceSeq || s.seq % stride != 0)
            continue;
        if (out.size() >= maxSamples)
            break;
        out.push_back(s);
    }
    return out;
}

TimelineBuffer
Timeline::snapshot() const
{
    TimelineBuffer buffer;
    buffer.recorded = recorded_;
    buffer.dropped = dropped_;
    buffer.sinkOk = !sinkFailed_;
    buffer.cadence = config_.cadence;
    if (sink_) {
        buffer.sinkPath = config_.sinkPath;
        buffer.flushed = sink_->written();
    }
    buffer.samples = chronological();
    return buffer;
}

TimelineBuffer
Timeline::take()
{
    TimelineBuffer buffer;
    buffer.recorded = recorded_;
    buffer.dropped = dropped_;
    buffer.sinkOk = !sinkFailed_;
    buffer.cadence = config_.cadence;
    if (sink_) {
        // Final drain: the on-disk stream must hold every recorded
        // sample before the buffer advertises the sink path.
        flushRingToSink();
        if (sink_ && sink_->flush()) {
            buffer.sinkPath = config_.sinkPath;
            buffer.flushed = sink_->written();
            sink_.reset();
            head_ = 0;
            recorded_ = 0;
            dropped_ = 0;
            samples_.clear();
            publishTimelineBuffer(buffer);
            return buffer;
        }
        // The drain or flush broke the sink; report the ring fallback.
        buffer.sinkOk = false;
        buffer.dropped = dropped_;
        sink_.reset();
        sinkFailed_ = true;
    }
    if (head_ == 0) {
        buffer.samples = std::move(samples_);
    } else {
        buffer.samples = chronological();
    }
    samples_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    if (enabled_)
        publishTimelineBuffer(buffer);
    return buffer;
}

void
timelineSampleJson(JsonWriter& w, const TimelineSample& s)
{
    // Every field is always emitted (timeline samples are dense, unlike
    // trace events) so CSV exports and sparkline tooling never need
    // per-row defaulting. Field order is part of the byte-identity
    // contract.
    w.field("t", s.t);
    w.field("seq", s.seq);
    w.field("ri", static_cast<std::uint64_t>(s.reservedInstances));
    w.field("oi", static_cast<std::uint64_t>(s.onDemandInstances));
    w.field("si", static_cast<std::uint64_t>(s.spotInstances));
    if (!s.typeCounts.empty()) {
        w.key("types");
        w.beginObject();
        for (const auto& [name, count] : s.typeCounts)
            w.field(name, static_cast<std::uint64_t>(count));
        w.endObject();
    }
    w.field("rcap", s.reservedCores);
    w.field("rused", s.reservedUsed);
    w.field("ocap", s.onDemandCores);
    w.field("oused", s.onDemandUsed);
    w.field("util", s.utilization);
    w.field("qmean", s.qualityMean);
    w.field("q5", s.qualityP5);
    w.field("q50", s.qualityP50);
    w.field("q95", s.qualityP95);
    w.field("queue", static_cast<std::uint64_t>(s.queueLength));
    w.field("active", static_cast<std::uint64_t>(s.activeJobs));
    w.field("running", static_cast<std::uint64_t>(s.runningJobs));
    w.field("done", s.finishedJobs);
    w.field("ext", s.externalLoad);
    w.field("spot", s.spotPrice);
    w.field("qos", static_cast<std::uint64_t>(s.qosTracked));
    w.field("cost", s.costTotal);
}

std::string
toJson(const TimelineSample& sample)
{
    JsonWriter w;
    w.beginObject();
    timelineSampleJson(w, sample);
    w.endObject();
    return w.take();
}

void
writeJsonl(std::ostream& out, const TimelineBuffer& buffer)
{
    for (const TimelineSample& s : buffer.samples)
        out << toJson(s) << '\n';
}

bool
sampleFromJson(const JsonValue& v, TimelineSample* out)
{
    if (v.type != JsonValue::Type::Object)
        return false;
    // "seq" distinguishes samples from run headers and trace events.
    const JsonValue* t = v.find("t");
    const JsonValue* seq = v.find("seq");
    if (!t || t->type != JsonValue::Type::Number || !seq ||
        seq->type != JsonValue::Type::Number) {
        return false;
    }
    TimelineSample s;
    s.t = t->number;
    s.seq = static_cast<std::uint64_t>(seq->number);
    auto u32 = [&](const char* name, std::uint32_t* field) {
        if (const JsonValue* f = v.find(name))
            *field = static_cast<std::uint32_t>(f->numberOr(0.0));
    };
    auto f64 = [&](const char* name, double* field) {
        if (const JsonValue* f = v.find(name))
            *field = f->numberOr(0.0);
    };
    u32("ri", &s.reservedInstances);
    u32("oi", &s.onDemandInstances);
    u32("si", &s.spotInstances);
    if (const JsonValue* types = v.find("types")) {
        if (types->type != JsonValue::Type::Object)
            return false;
        for (const auto& [name, count] : types->object)
            s.typeCounts.emplace_back(
                name, static_cast<std::uint32_t>(count.numberOr(0.0)));
    }
    f64("rcap", &s.reservedCores);
    f64("rused", &s.reservedUsed);
    f64("ocap", &s.onDemandCores);
    f64("oused", &s.onDemandUsed);
    f64("util", &s.utilization);
    f64("qmean", &s.qualityMean);
    f64("q5", &s.qualityP5);
    f64("q50", &s.qualityP50);
    f64("q95", &s.qualityP95);
    u32("queue", &s.queueLength);
    u32("active", &s.activeJobs);
    u32("running", &s.runningJobs);
    if (const JsonValue* done = v.find("done"))
        s.finishedJobs = static_cast<std::uint64_t>(done->numberOr(0.0));
    f64("ext", &s.externalLoad);
    f64("spot", &s.spotPrice);
    u32("qos", &s.qosTracked);
    f64("cost", &s.costTotal);
    *out = std::move(s);
    return true;
}

bool
sampleFromJsonLine(const std::string& line, TimelineSample* out)
{
    JsonValue v;
    try {
        v = parseJson(line);
    } catch (const std::exception&) {
        return false;
    }
    return sampleFromJson(v, out);
}

} // namespace hcloud::obs
