/**
 * @file
 * Request-scoped span tracing: causal, per-request wall-clock timing
 * from the HTTP edge through the strand executor into the engine.
 *
 * The decision tracer (obs::Tracer) answers "what did the simulation
 * decide and why" in *virtual* time; spans answer "where did this
 * request's wall-clock go" — accept/read, parse, route, strand wait,
 * engine execute, response write — and join the two worlds by stamping
 * every decision TraceEvent with the active trace id.
 *
 * Model (deliberately small — not OpenTelemetry):
 *  - a *trace* is one request; ids are process-unique uint64 counters;
 *  - a *span* is one named [start,end) wall-clock interval inside a
 *    trace, with a parent span id (0 = root);
 *  - an *event* is an instantaneous annotation attached to a span
 *    (e.g. one provisioning decision, which also carries its virtual
 *    timestamp so span JSONL joins the decision-trace JSONL).
 *
 * Propagation is thread-local: SpanBinding installs (tracer, context)
 * on the current thread; SpanScope opens a child span of whatever is
 * current and re-parents the context for its lifetime. Crossing a
 * runtime::ShardedExecutor strand hands the binding over explicitly
 * (post() captures it, the drain job restores it), which is what makes
 * strand queue wait visible as its own span.
 *
 * Cost contract: with no tracer bound (the default everywhere outside
 * `hcloud serve --span-trace`), SpanScope construction is one
 * thread-local load and one branch — measured by
 * BM_SpanScopeDisabled in bench_overheads and gated in CI, so the
 * PR 5 hot-path wins survive. With a tracer bound, each span is one
 * clock sample at open, one at close, and one formatted JSONL line
 * buffered into a TraceSink under a mutex.
 *
 * Export: JSONL (one object per line, {"span":...} or {"event":...})
 * through the same TraceSink machinery the decision tracer streams
 * through, plus writeChromeTrace() which converts a span JSONL stream
 * into a chrome://tracing-compatible trace-event JSON document.
 */

#ifndef HCLOUD_OBS_SPAN_HPP
#define HCLOUD_OBS_SPAN_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace hcloud::obs {

class TraceSink;

/** The (trace, span) pair a new child span attaches under. */
struct SpanContext
{
    std::uint64_t trace = 0; ///< request identity (0 = none)
    std::uint64_t span = 0;  ///< parent span id (0 = root)

    bool valid() const { return trace != 0; }
};

/** Span tracing knobs. */
struct SpanTracerConfig
{
    /** JSONL output path; empty = tracing disabled. */
    std::string sinkPath;
};

/**
 * Thread-safe collector of span/event records, streaming JSONL to a
 * TraceSink. One instance per process surface (the daemon owns one);
 * tests and benches construct private instances.
 */
class SpanTracer
{
  public:
    explicit SpanTracer(SpanTracerConfig config = {});
    ~SpanTracer();

    SpanTracer(const SpanTracer&) = delete;
    SpanTracer& operator=(const SpanTracer&) = delete;

    /** True when a sink is open and healthy; all record calls are
     *  no-ops otherwise. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    const std::string& sinkPath() const { return config_.sinkPath; }

    /** Process-unique id for a new request. */
    std::uint64_t newTraceId()
    {
        return nextTrace_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Process-unique id for a new span. */
    std::uint64_t newSpanId()
    {
        return nextSpan_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Record one completed span. @p startNs/@p endNs are nowNs()
     * samples; @p name must outlive the call (string literals).
     */
    void span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
              const char* name, std::uint64_t startNs,
              std::uint64_t endNs, std::string_view detail = {});

    /**
     * Record one instantaneous annotation under span @p parent at the
     * current wall clock; @p simTime carries the virtual timestamp of
     * the underlying decision event (NaN-free by construction).
     */
    void event(std::uint64_t trace, std::uint64_t parent,
               const char* name, double simTime,
               std::string_view detail = {});

    /** Spans + events successfully handed to the sink. */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Push buffered lines to disk. */
    void flush();

    /** Monotonic wall clock, nanoseconds (steady_clock). */
    static std::uint64_t nowNs();

  private:
    void append(std::string&& line);

    SpanTracerConfig config_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> nextTrace_{1};
    std::atomic<std::uint64_t> nextSpan_{1};
    std::atomic<std::uint64_t> recorded_{0};
    std::mutex mutex_;
    std::unique_ptr<TraceSink> sink_;
};

/** The span context bound to this thread ({0,0} when none). */
SpanContext currentSpanContext();

/** The tracer bound to this thread (nullptr when none). */
SpanTracer* currentSpanTracer();

/**
 * RAII: bind (@p tracer, @p context) to this thread, restoring the
 * previous binding on destruction. The HTTP layer binds the root
 * context around handler invocation; the strand executor re-binds on
 * the draining pool thread.
 */
class SpanBinding
{
  public:
    SpanBinding(SpanTracer* tracer, SpanContext context);
    ~SpanBinding();

    SpanBinding(const SpanBinding&) = delete;
    SpanBinding& operator=(const SpanBinding&) = delete;

  private:
    SpanTracer* prevTracer_;
    SpanContext prevContext_;
};

/**
 * RAII child span of the current thread-local context. Inert (one TLS
 * load, one branch) when no tracer is bound or tracing is disabled.
 * While alive, the current context points at this span, so nested
 * scopes and strand handoffs parent correctly.
 */
class SpanScope
{
  public:
    explicit SpanScope(const char* name, std::string_view detail = {});
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    /** False when this scope is a no-op. */
    bool active() const { return tracer_ != nullptr; }

  private:
    SpanTracer* tracer_ = nullptr;
    const char* name_ = nullptr;
    SpanContext prev_;
    std::uint64_t id_ = 0;
    std::uint64_t startNs_ = 0;
    std::string detail_;
};

/**
 * Convert a span JSONL stream (as written by SpanTracer) into a
 * chrome://tracing / Perfetto-compatible trace-event JSON document:
 * complete ("ph":"X") events for spans, instant ("ph":"i") events for
 * annotations, one tid per trace so each request renders as its own
 * row. Unrecognized lines are skipped and counted.
 * @return false (with @p error filled when non-null) when @p in held
 * no span records at all.
 */
bool writeChromeTrace(std::istream& in, std::ostream& out,
                      std::string* error = nullptr);

} // namespace hcloud::obs

#endif // HCLOUD_OBS_SPAN_HPP
