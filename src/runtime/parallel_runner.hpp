/**
 * @file
 * ParallelRunner: exp::Runner's run matrix and sweeps on a thread pool.
 *
 * Drop-in replacement for exp::Runner that executes run-matrix cells and
 * runBatch() sweep points concurrently. Determinism contract:
 *
 *  - every task builds its own core::Engine from the same root-seed
 *    derivation the serial Runner uses (see the seed contract in
 *    exp/runner.hpp), so an engine's RNG draws cannot be perturbed by
 *    what other threads do;
 *  - shared scenario traces are generated once, up front, and only read
 *    by tasks; per-spec scenario overrides generate private traces inside
 *    the task;
 *  - results are merged in submission order (runtime::parallelMap), so
 *    iteration order over the memo cache and batch result vectors is
 *    identical to serial execution.
 *
 * Together these make every figure bit-identical to the serial path —
 * asserted by tests/test_runtime_determinism.cpp. The memo cache itself
 * is mutex-guarded, so run()/trace() may also be called from concurrent
 * caller threads.
 *
 * Thread count: ExperimentOptions::threads if non-zero, else the
 * HCLOUD_THREADS environment variable, else hardware_concurrency. A count
 * of 1 bypasses the pool entirely and delegates to the serial base class.
 */

#ifndef HCLOUD_RUNTIME_PARALLEL_RUNNER_HPP
#define HCLOUD_RUNTIME_PARALLEL_RUNNER_HPP

#include <mutex>

#include "exp/runner.hpp"
#include "runtime/thread_pool.hpp"

namespace hcloud::runtime {

/** Parallel, thread-safe drop-in for the serial exp::Runner. */
class ParallelRunner final : public exp::Runner
{
  public:
    explicit ParallelRunner(exp::ExperimentOptions options = {},
                            core::EngineConfig baseConfig = {});

    /** Effective worker count (1 = serial delegation). */
    std::size_t threadCount() const { return threads_; }

    const workload::ArrivalTrace& trace(
        workload::ScenarioKind scenario) override;

    const core::RunResult& run(workload::ScenarioKind scenario,
                               core::StrategyKind strategy,
                               bool profiling = true) override;

    // runWith() is inherited: it only touches trace() (thread-safe here)
    // and task-local state, so the base implementation is already safe.

    std::vector<core::RunResult> runBatch(
        const std::vector<exp::RunSpec>& specs) override;

    void prewarm(bool includeUnprofiled = false) override;

  private:
    /** Generate-and-cache under the lock; returns a stable reference. */
    const workload::ArrivalTrace& ensureTrace(
        workload::ScenarioKind scenario);

    std::size_t threads_;
    ThreadPool pool_;
    std::mutex mutex_; ///< guards traces_ and results_
};

} // namespace hcloud::runtime

#endif // HCLOUD_RUNTIME_PARALLEL_RUNNER_HPP
