/**
 * @file
 * Fixed-size thread pool with chunked parallel-for / parallel-map helpers.
 *
 * The pool is the low-level half of the execution runtime: it knows nothing
 * about experiments, only about running closures on worker threads. Design
 * constraints, in order:
 *
 *  1. Determinism of *results* is the caller's problem (tasks must not share
 *     mutable state); determinism of *structure* is ours: parallelMap()
 *     returns results in submission order, and when several tasks throw,
 *     the exception of the lowest-index task is the one rethrown, so a
 *     failing run reports the same error regardless of scheduling.
 *  2. Exceptions never kill a worker: they are captured per task and
 *     rethrown on the waiting caller's thread.
 *  3. A pool constructed with one thread (e.g. HCLOUD_THREADS=1) runs every
 *     task inline on the caller's thread — the serial path is the literal
 *     same code path a pool-free caller would take, not a one-worker queue.
 *  4. Destruction is graceful: queued tasks are drained, then workers join.
 */

#ifndef HCLOUD_RUNTIME_THREAD_POOL_HPP
#define HCLOUD_RUNTIME_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace hcloud::obs {
class ProcessCounter;
class ProcessGauge;
} // namespace hcloud::obs

namespace hcloud::runtime {

/** std::thread::hardware_concurrency(), never less than 1. */
std::size_t hardwareThreads();

/** Why a thread-count string was rejected (see parseThreadCount). */
struct ThreadCountError
{
    /** The offending value, verbatim. */
    std::string value;
    /** Human-readable rejection reason ("not a positive integer", ...). */
    std::string reason;
};

/**
 * Parse a worker-count token as used by HCLOUD_THREADS and --threads:
 * a positive base-10 integer with no trailing characters.
 *
 * @return the count, or std::nullopt with @p error (when non-null)
 * filled in. Rejections are structured, never silent: "0", "abc", "4x",
 * "" and negative values all produce an error instead of a fallback.
 */
std::optional<std::size_t> parseThreadCount(const char* text,
                                            ThreadCountError* error);

/**
 * Worker count used when none is requested explicitly: the
 * HCLOUD_THREADS environment variable if set, otherwise
 * hardwareThreads(). HCLOUD_THREADS=1 therefore forces every runtime
 * consumer onto the serial path.
 *
 * @throws std::invalid_argument when HCLOUD_THREADS is set but is not a
 * positive integer. A malformed knob used to fall back to
 * hardwareThreads() silently — which on a big host turned "HCLOUD_THREADS=
 * 4x" into a 64-way fan-out nobody asked for. CLIs validate at the edge
 * (exp::parseBenchCli) and report the structured reason instead.
 */
std::size_t defaultThreadCount();

/**
 * Fixed-size worker pool.
 *
 * submit() enqueues a closure; wait() blocks until everything submitted so
 * far has finished and rethrows the first exception any task raised since
 * the last wait(). Higher-level fan-outs should prefer parallelFor() /
 * parallelMap(), which add chunking, ordered results and lowest-index
 * exception selection.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 = defaultThreadCount(). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Worker count. 0 means the pool is serial: submit() runs tasks
     * inline on the calling thread.
     */
    std::size_t size() const { return workers_.size(); }

    /** True when tasks run inline on the caller's thread. */
    bool serial() const { return workers_.empty(); }

    /** Enqueue a task (or run it inline on a serial pool). */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has completed. Rethrows the
     * first exception captured from a task since the previous wait().
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workCv_; ///< queue non-empty or stopping
    std::condition_variable doneCv_; ///< pending count reached zero
    std::size_t pending_ = 0;        ///< queued + currently executing
    std::exception_ptr error_;       ///< first task exception since wait()
    bool stop_ = false;

    // Process-wide observability (obs::ProcessMetrics::instance()):
    // queue depth and in-flight move via atomic add so several pools
    // compose, completed/failed count per task. Pointers cached at
    // construction; updates are one atomic op each.
    obs::ProcessGauge* queueDepth_;
    obs::ProcessGauge* inflight_;
    obs::ProcessGauge* workers_gauge_;
    obs::ProcessCounter* completed_;
    obs::ProcessCounter* failed_;
};

namespace detail {

/**
 * Join-point for one parallelFor/parallelMap call: counts completions and
 * keeps the exception of the lowest-index failed task.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(std::size_t pending) : pending_(pending) {}

    void finish(std::size_t index, std::exception_ptr error)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error && index < errorIndex_) {
            errorIndex_ = index;
            error_ = error;
        }
        if (--pending_ == 0)
            cv_.notify_all();
    }

    /** Blocks until every task finished; rethrows the selected error. */
    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return pending_ == 0; });
        if (error_)
            std::rethrow_exception(error_);
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t pending_;
    std::exception_ptr error_;
    std::size_t errorIndex_ = static_cast<std::size_t>(-1);
};

/** Chunk length for n items on a pool, targeting ~4 chunks per worker. */
inline std::size_t
chunkLength(const ThreadPool& pool, std::size_t n, std::size_t requested)
{
    if (requested > 0)
        return requested;
    const std::size_t target = pool.size() * 4;
    if (target == 0)
        return n > 0 ? n : 1;
    const std::size_t chunk = (n + target - 1) / target;
    return chunk > 0 ? chunk : 1;
}

} // namespace detail

/**
 * Invoke fn(i) for every i in [begin, end), distributing contiguous chunks
 * across the pool. Blocks until done; rethrows the exception of the
 * lowest-index failing iteration. On a serial pool this is a plain loop.
 *
 * @param chunk Iterations per task; 0 = automatic (~4 chunks per worker).
 */
template <typename Fn>
void
parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end, Fn fn,
            std::size_t chunk = 0)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    if (pool.serial()) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    const std::size_t len = detail::chunkLength(pool, n, chunk);
    const std::size_t chunks = (n + len - 1) / len;
    detail::TaskGroup group(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = begin + c * len;
        const std::size_t hi = lo + len < end ? lo + len : end;
        pool.submit([&fn, &group, c, lo, hi] {
            std::exception_ptr error;
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    fn(i);
            } catch (...) {
                error = std::current_exception();
            }
            group.finish(c, error);
        });
    }
    group.wait();
}

/**
 * Compute fn(i) for every i in [0, n) concurrently and return the results
 * in index order — the deterministic, submission-ordered merge every
 * runtime consumer builds on. Blocks until done; rethrows the exception of
 * the lowest-index failing task. On a serial pool this is a plain loop.
 */
template <typename Fn>
auto
parallelMap(ThreadPool& pool, std::size_t n, Fn fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(n);
    if (pool.serial()) {
        for (std::size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }
    detail::TaskGroup group(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, &results, &group, i] {
            std::exception_ptr error;
            try {
                results[i] = fn(i);
            } catch (...) {
                error = std::current_exception();
            }
            group.finish(i, error);
        });
    }
    group.wait();
    return results;
}

} // namespace hcloud::runtime

#endif // HCLOUD_RUNTIME_THREAD_POOL_HPP
