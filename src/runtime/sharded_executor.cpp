#include "runtime/sharded_executor.hpp"

namespace hcloud::runtime {

ShardedExecutor::ShardedExecutor(ThreadPool& pool, std::size_t shards)
    : pool_(pool)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ShardedExecutor::~ShardedExecutor()
{
    drain();
}

void
ShardedExecutor::post(std::size_t shard, Task task)
{
    Shard& s = *shards_[shard % shards_.size()];
    bool schedule = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.queue.push_back(std::move(task));
        if (!s.scheduled) {
            s.scheduled = true;
            schedule = true;
        }
    }
    if (schedule) {
        const std::size_t index = shard % shards_.size();
        // On serial pools submit() runs inline, so post() degrades to
        // synchronous execution — exactly the deterministic path the
        // single-threaded tests rely on.
        pool_.submit([this, index] { runShard(index); });
    }
}

void
ShardedExecutor::runShard(std::size_t index)
{
    Shard& s = *shards_[index];
    for (;;) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            if (s.queue.empty()) {
                // Clearing `scheduled` under the lock closes the race
                // with a concurrent post(): either it sees scheduled
                // and enqueues behind us (we would have seen the task),
                // or it resubmits a fresh drain job.
                s.scheduled = false;
                s.idle.notify_all();
                return;
            }
            task = std::move(s.queue.front());
            s.queue.pop_front();
        }
        task();
    }
}

void
ShardedExecutor::drain()
{
    for (std::unique_ptr<Shard>& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard->mutex);
        shard->idle.wait(lock, [&] {
            return shard->queue.empty() && !shard->scheduled;
        });
    }
}

} // namespace hcloud::runtime
