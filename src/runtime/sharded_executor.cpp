#include "runtime/sharded_executor.hpp"

#include "obs/span.hpp"

namespace hcloud::runtime {

ShardedExecutor::ShardedExecutor(ThreadPool& pool, std::size_t shards)
    : pool_(pool)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ShardedExecutor::~ShardedExecutor()
{
    drain();
}

void
ShardedExecutor::post(std::size_t shard, Task task)
{
    Shard& s = *shards_[shard % shards_.size()];
    // Span handoff: a strand hop moves work to a pool thread, so the
    // caller's thread-local binding would be lost. Capture it here and
    // restore it inside the task — which also makes the queue wait
    // visible as its own "strand.wait" span.
    if (obs::SpanTracer* st = obs::currentSpanTracer();
        st && st->enabled() && obs::currentSpanContext().valid()) {
        const obs::SpanContext ctx = obs::currentSpanContext();
        const std::uint64_t enqueuedNs = obs::SpanTracer::nowNs();
        task = [st, ctx, enqueuedNs, inner = std::move(task)] {
            const std::uint64_t startNs = obs::SpanTracer::nowNs();
            st->span(ctx.trace, st->newSpanId(), ctx.span, "strand.wait",
                     enqueuedNs, startNs);
            obs::SpanBinding bind(st, ctx);
            obs::SpanScope exec("strand.exec");
            inner();
        };
    }
    bool schedule = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.queue.push_back(std::move(task));
        s.depth.fetch_add(1, std::memory_order_relaxed);
        if (!s.scheduled) {
            s.scheduled = true;
            schedule = true;
        }
    }
    if (schedule) {
        const std::size_t index = shard % shards_.size();
        // On serial pools submit() runs inline, so post() degrades to
        // synchronous execution — exactly the deterministic path the
        // single-threaded tests rely on.
        pool_.submit([this, index] { runShard(index); });
    }
}

void
ShardedExecutor::runShard(std::size_t index)
{
    Shard& s = *shards_[index];
    for (;;) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            if (s.queue.empty()) {
                // Clearing `scheduled` under the lock closes the race
                // with a concurrent post(): either it sees scheduled
                // and enqueues behind us (we would have seen the task),
                // or it resubmits a fresh drain job.
                s.scheduled = false;
                s.idle.notify_all();
                return;
            }
            task = std::move(s.queue.front());
            s.queue.pop_front();
        }
        task();
        // Decrement after the task ran: depth counts queued + running,
        // so a long task shows as backup instead of vanishing early.
        s.depth.fetch_sub(1, std::memory_order_relaxed);
        s.executed.fetch_add(1, std::memory_order_relaxed);
    }
}

std::vector<std::size_t>
ShardedExecutor::queueDepths() const
{
    std::vector<std::size_t> depths;
    depths.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_)
        depths.push_back(shard->depth.load(std::memory_order_relaxed));
    return depths;
}

std::uint64_t
ShardedExecutor::tasksExecuted() const
{
    std::uint64_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_)
        total += shard->executed.load(std::memory_order_relaxed);
    return total;
}

void
ShardedExecutor::drain()
{
    for (std::unique_ptr<Shard>& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard->mutex);
        shard->idle.wait(lock, [&] {
            return shard->queue.empty() && !shard->scheduled;
        });
    }
}

} // namespace hcloud::runtime
