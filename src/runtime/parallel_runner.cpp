#include "runtime/parallel_runner.hpp"

#include <chrono>
#include <map>

#include "obs/phase_profiler.hpp"

namespace hcloud::runtime {

ParallelRunner::ParallelRunner(exp::ExperimentOptions options,
                               core::EngineConfig baseConfig)
    : Runner(options, baseConfig),
      threads_(options.threads > 0 ? options.threads
                                   : defaultThreadCount()),
      pool_(threads_)
{
}

const workload::ArrivalTrace&
ParallelRunner::trace(workload::ScenarioKind scenario)
{
    return ensureTrace(scenario);
}

const workload::ArrivalTrace&
ParallelRunner::ensureTrace(workload::ScenarioKind scenario)
{
    // Generation happens under the lock: it is cheap relative to a run,
    // and map references stay stable across later inserts.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = traces_.find(scenario);
    if (it == traces_.end()) {
        const auto start = obs::PhaseProfiler::Clock::now();
        workload::ArrivalTrace generated =
            workload::generateScenario(scenarioConfig(scenario));
        traceGenSec_[scenario] =
            std::chrono::duration<double>(
                obs::PhaseProfiler::Clock::now() - start)
                .count();
        it = traces_.emplace(scenario, std::move(generated)).first;
    }
    return it->second;
}

const core::RunResult&
ParallelRunner::run(workload::ScenarioKind scenario,
                    core::StrategyKind strategy, bool profiling)
{
    const auto key = std::make_tuple(scenario, strategy, profiling);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = results_.find(key);
        if (it != results_.end())
            return it->second;
    }
    // Compute outside the lock. Two threads racing on the same cell both
    // produce the bit-identical result, and emplace keeps the first.
    const workload::ArrivalTrace& tr = ensureTrace(scenario);
    core::EngineConfig cfg = baseConfig_;
    cfg.useProfiling = profiling;
    // The sink tag carries a sequence number so two threads racing the
    // same cell never write the same file; the loser's part file is
    // orphaned along with its discarded result. Merged artifacts stay
    // byte-identical because file names never appear in the stream.
    applySinkTag(cfg, cellSinkTag(scenario, strategy, profiling) + "." +
                          std::to_string(nextSinkSeq()));
    core::Engine engine(cfg);
    core::RunResult result =
        engine.run(tr, strategy, workload::toString(scenario));
    // Publish before the lock: the process registry is thread-safe and
    // live scrapes should see the run the moment it finishes.
    publishRunCompleted(result);
    std::lock_guard<std::mutex> lock(mutex_);
    result.telemetry.traceGenSec = traceGenSeconds(scenario);
    result.telemetry.threads = threads_;
    const auto [it, inserted] = results_.emplace(key, std::move(result));
    if (inserted)
        publishCellCompleted();
    return it->second;
}

std::vector<core::RunResult>
ParallelRunner::runBatch(const std::vector<exp::RunSpec>& specs)
{
    if (threads_ <= 1 || specs.size() <= 1)
        return Runner::runBatch(specs);
    // Resolve shared traces up front so tasks never mutate shared state.
    std::vector<const workload::ArrivalTrace*> shared(specs.size(),
                                                      nullptr);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].scenarioOverride)
            shared[i] = &ensureTrace(specs[i].scenario);
    }
    const std::string batch = "b" + std::to_string(nextSinkSeq()) + "x";
    std::vector<core::RunResult> results =
        parallelMap(pool_, specs.size(), [&](std::size_t i) {
            return executeSpec(specs[i], shared[i],
                               batch + std::to_string(i));
        });
    // Telemetry is per-runner, not per-engine: stamp the worker count and
    // the shared-trace generation cost after the barrier. All trace
    // generation finished before the map, so the reads are race-free.
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < results.size(); ++i) {
        results[i].telemetry.threads = threads_;
        if (!specs[i].scenarioOverride)
            results[i].telemetry.traceGenSec =
                traceGenSeconds(specs[i].scenario);
        if (recordAdhoc_)
            adhoc_.push_back(results[i]);
    }
    return results;
}

void
ParallelRunner::prewarm(bool includeUnprofiled)
{
    if (threads_ <= 1) {
        Runner::prewarm(includeUnprofiled);
        return;
    }
    std::map<workload::ScenarioKind, const workload::ArrivalTrace*>
        shared;
    for (workload::ScenarioKind s : workload::kAllScenarios)
        shared[s] = &ensureTrace(s);

    struct Cell
    {
        workload::ScenarioKind scenario;
        core::StrategyKind strategy;
        bool profiling;
    };
    std::vector<Cell> cells;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (workload::ScenarioKind s : workload::kAllScenarios) {
            for (core::StrategyKind st : core::kAllStrategies) {
                for (bool profiling : {true, false}) {
                    if (!profiling && !includeUnprofiled)
                        continue;
                    if (!results_.count(
                            std::make_tuple(s, st, profiling)))
                        cells.push_back({s, st, profiling});
                }
            }
        }
    }
    std::vector<core::RunResult> results =
        parallelMap(pool_, cells.size(), [&](std::size_t i) {
            const Cell& c = cells[i];
            core::EngineConfig cfg = baseConfig_;
            cfg.useProfiling = c.profiling;
            // Cells are unique here (collected under the lock), so the
            // serial Runner's deterministic cell tags are collision-free.
            applySinkTag(cfg,
                         cellSinkTag(c.scenario, c.strategy, c.profiling));
            core::Engine engine(cfg);
            core::RunResult result = engine.run(
                *shared.at(c.scenario), c.strategy,
                workload::toString(c.scenario));
            // Published from the worker, not the merge barrier, so a
            // mid-prewarm scrape watches cells complete one by one.
            publishRunCompleted(result);
            return result;
        });
    // Deterministic, submission-ordered merge into the memo cache.
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        results[i].telemetry.traceGenSec = traceGenSeconds(c.scenario);
        results[i].telemetry.threads = threads_;
        if (results_
                .emplace(
                    std::make_tuple(c.scenario, c.strategy, c.profiling),
                    std::move(results[i]))
                .second)
            publishCellCompleted();
    }
}

} // namespace hcloud::runtime
