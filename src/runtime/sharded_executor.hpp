/**
 * @file
 * ShardedExecutor: N serial "strands" multiplexed onto one ThreadPool.
 *
 * The serving layer pins every tenant session to a shard
 * (shard = tenantSeq % shards) so all work for one session executes
 * serially — engine state needs no locking — while different shards run
 * concurrently on the pool. Classic strand pattern: each shard keeps a
 * FIFO of pending tasks plus a `scheduled` flag; the first task posted
 * to an idle shard submits a drain job to the pool, and the drain job
 * runs tasks until the FIFO empties (re-checking under the shard lock
 * before clearing `scheduled`, so a task posted concurrently is never
 * stranded).
 *
 * Guarantees:
 *  - tasks posted to one shard run in post order, never concurrently;
 *  - call() blocks until the task has run and returns its result;
 *    exceptions propagate to the caller;
 *  - on a serial pool (pool.serial() == true) an idle shard's task runs
 *    inline on the calling thread, preserving the repo-wide "thread
 *    count 1 is deterministic and stack-traceable" property — but shard
 *    exclusion still holds when several threads share the executor: a
 *    caller hitting a busy shard enqueues behind the running drain and
 *    (for call()) parks until its task has run.
 *
 * Deadlock note: call() parks the calling thread until a pool worker
 * drains the shard. Callers must not be pool workers themselves (the
 * HTTP layer's workers are HttpServer-owned threads, a disjoint set),
 * otherwise a full pool could wait on itself.
 */

#ifndef HCLOUD_RUNTIME_SHARDED_EXECUTOR_HPP
#define HCLOUD_RUNTIME_SHARDED_EXECUTOR_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace hcloud::runtime {

/** Per-shard serial execution on top of a shared ThreadPool. */
class ShardedExecutor
{
  public:
    using Task = std::function<void()>;

    /**
     * @param pool   shared pool the shard drain jobs run on
     * @param shards number of independent strands (>= 1; 0 is bumped
     *               to 1)
     */
    ShardedExecutor(ThreadPool& pool, std::size_t shards);

    /** Drains every shard before returning. */
    ~ShardedExecutor();

    ShardedExecutor(const ShardedExecutor&) = delete;
    ShardedExecutor& operator=(const ShardedExecutor&) = delete;

    std::size_t shards() const { return shards_.size(); }

    /** Fire-and-forget @p task on @p shard, after all earlier tasks. */
    void post(std::size_t shard, Task task);

    /**
     * Run @p fn on @p shard and return its result; blocks the calling
     * thread, rethrows anything @p fn throws. Inline on serial pools.
     */
    template <typename Fn>
    auto call(std::size_t shard, Fn&& fn) -> decltype(fn())
    {
        using Result = decltype(fn());
        // No serial-pool fast path: even when submit() is inline, the
        // queue + `scheduled` flag are what exclude a concurrent caller
        // on the same shard (multiple HTTP workers share a serial
        // engine pool on small hosts). post() below still runs the task
        // on this thread when the pool is serial and the shard idle, so
        // the single-threaded paths stay stack-traceable.
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        std::exception_ptr error;
        if constexpr (std::is_void_v<Result>) {
            post(shard, [&] {
                try {
                    fn();
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(m);
                done = true;
                cv.notify_one();
            });
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return done; });
            if (error)
                std::rethrow_exception(error);
        } else {
            std::optional<Result> slot;
            post(shard, [&] {
                try {
                    slot.emplace(fn());
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(m);
                done = true;
                cv.notify_one();
            });
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return done; });
            if (error)
                std::rethrow_exception(error);
            return std::move(*slot);
        }
    }

    /** Block until every shard's FIFO is empty and no task is running. */
    void drain();

    /**
     * Tasks currently queued or running on @p shard. Lock-free read of
     * an atomic maintained by post()/runShard(); /statusz polls this to
     * make strand backup visible without touching the shard mutexes.
     */
    std::size_t queueDepth(std::size_t shard) const
    {
        return shards_[shard % shards_.size()]->depth.load(
            std::memory_order_relaxed);
    }

    /** queueDepth() for every shard, in shard order. */
    std::vector<std::size_t> queueDepths() const;

    /** Tasks completed across all shards since construction. */
    std::uint64_t tasksExecuted() const;

  private:
    struct Shard
    {
        std::mutex mutex;
        std::deque<Task> queue;
        bool scheduled = false; ///< a drain job is queued or running
        std::condition_variable idle;
        /** Queued + running tasks (inc on post, dec after run). */
        std::atomic<std::size_t> depth{0};
        /** Tasks completed on this shard. */
        std::atomic<std::uint64_t> executed{0};
    };

    void runShard(std::size_t index);

    ThreadPool& pool_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace hcloud::runtime

#endif // HCLOUD_RUNTIME_SHARDED_EXECUTOR_HPP
