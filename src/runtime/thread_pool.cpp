#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace hcloud::runtime {

std::size_t
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

std::size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("HCLOUD_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    return hardwareThreads();
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    // One thread means "run on the caller": spawning a single worker would
    // only add queueing latency without any overlap.
    if (threads <= 1)
        return;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (serial()) {
        // Serial path: execute inline. Exceptions are captured so that
        // submit()/wait() semantics match the threaded pool.
        try {
            task();
        } catch (...) {
            if (!error_)
                error_ = std::current_exception();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return pending_ == 0; });
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            // Graceful shutdown: keep draining until the queue is empty.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !error_)
                error_ = error;
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

} // namespace hcloud::runtime
