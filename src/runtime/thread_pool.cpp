#include "runtime/thread_pool.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/process_metrics.hpp"

namespace hcloud::runtime {

std::size_t
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

std::optional<std::size_t>
parseThreadCount(const char* text, ThreadCountError* error)
{
    auto reject = [&](const char* reason) -> std::optional<std::size_t> {
        if (error) {
            error->value = text ? text : "";
            error->reason = reason;
        }
        return std::nullopt;
    };
    if (!text || *text == '\0')
        return reject("empty value");
    // strtoul accepts leading whitespace, '+' and even '-' (wrapping);
    // a worker count is digits only.
    for (const char* p = text; *p != '\0'; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return reject("not a positive integer");
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (errno == ERANGE)
        return reject("out of range");
    if (v == 0)
        return reject("must be at least 1");
    return static_cast<std::size_t>(v);
}

std::size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("HCLOUD_THREADS")) {
        ThreadCountError error;
        if (const auto v = parseThreadCount(env, &error))
            return *v;
        throw std::invalid_argument("HCLOUD_THREADS=\"" + error.value +
                                    "\": " + error.reason);
    }
    return hardwareThreads();
}

ThreadPool::ThreadPool(std::size_t threads)
{
    obs::ProcessMetrics& pm = obs::ProcessMetrics::instance();
    queueDepth_ = &pm.gauge("hcloud_pool_queue_depth",
                            "Tasks queued but not yet picked up, summed "
                            "over all live pools");
    inflight_ = &pm.gauge("hcloud_pool_inflight_tasks",
                          "Tasks currently executing on pool workers");
    completed_ = &pm.counter("hcloud_pool_tasks_completed_total",
                             "Pool tasks finished without an exception");
    failed_ = &pm.counter("hcloud_pool_tasks_failed_total",
                          "Pool tasks that raised an exception");
    workers_gauge_ = &pm.gauge("hcloud_pool_workers",
                               "Worker threads across all live pools "
                               "(serial pools contribute 0)");
    if (threads == 0)
        threads = defaultThreadCount();
    // One thread means "run on the caller": spawning a single worker would
    // only add queueing latency without any overlap.
    if (threads <= 1)
        return;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    workers_gauge_->add(static_cast<double>(workers_.size()));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
    workers_gauge_->add(-static_cast<double>(workers_.size()));
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (serial()) {
        // Serial path: execute inline. Exceptions are captured so that
        // submit()/wait() semantics match the threaded pool.
        inflight_->add(1.0);
        try {
            task();
            completed_->inc();
        } catch (...) {
            failed_->inc();
            if (!error_)
                error_ = std::current_exception();
        }
        inflight_->add(-1.0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    queueDepth_->add(1.0);
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return pending_ == 0; });
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            // Graceful shutdown: keep draining until the queue is empty.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueDepth_->add(-1.0);
        inflight_->add(1.0);
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        inflight_->add(-1.0);
        (error ? failed_ : completed_)->inc();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !error_)
                error_ = error;
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

} // namespace hcloud::runtime
