/**
 * @file
 * Helpers shared between the figure-driver translation units.
 */

#ifndef HCLOUD_EXP_FIGURES_DETAIL_HPP
#define HCLOUD_EXP_FIGURES_DETAIL_HPP

#include <vector>

#include "cloud/pricing.hpp"
#include "core/types.hpp"
#include "exp/runner.hpp"

namespace hcloud::exp::detail {

/** Normalized-cost denominator: the static scenario under SR. */
double staticSrCost(Runner& runner, const cloud::PricingModel& pricing);

/** p5 of the per-job normalized-performance distribution ("tail perf"). */
double tailPerf(const core::RunResult& r);

/** Shared body for the Figure 4 / Figure 10 performance panels. */
void perfPanel(Runner& runner,
               const std::vector<core::StrategyKind>& strategies);

/** Shared body for the Figure 5 / Figure 11 cost panels. */
void costPanel(Runner& runner,
               const std::vector<core::StrategyKind>& strategies);

} // namespace hcloud::exp::detail

#endif // HCLOUD_EXP_FIGURES_DETAIL_HPP
