/**
 * @file
 * Figure drivers: hybrid-strategy comparison (Figures 10-11), the
 * Section 5 sensitivity studies (Figures 12-17) and the resource-
 * efficiency views (Figures 18-21).
 */

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

#include "cloud/pricing.hpp"
#include "exp/figures.hpp"
#include "exp/figures_detail.hpp"
#include "exp/report.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::exp {

void
fig10HybridPerf(Runner& runner)
{
    printHeader("Figure 10: SR / HF / HM performance, with and without "
                "profiling information");
    detail::perfPanel(runner,
                      {core::StrategyKind::SR, core::StrategyKind::HF,
                       core::StrategyKind::HM});

    double hf_gain = 0.0;
    double hm_gain = 0.0;
    double hybrid_perf = 0.0;
    double sr_perf = 0.0;
    double od_perf = 0.0;
    for (workload::ScenarioKind s : workload::kAllScenarios) {
        hf_gain += runner.run(s, core::StrategyKind::HF, true)
                       .meanPerfNorm() /
            runner.run(s, core::StrategyKind::HF, false).meanPerfNorm();
        hm_gain += runner.run(s, core::StrategyKind::HM, true)
                       .meanPerfNorm() /
            runner.run(s, core::StrategyKind::HM, false).meanPerfNorm();
        sr_perf += runner.run(s, core::StrategyKind::SR).meanPerfNorm();
        hybrid_perf +=
            0.5 * (runner.run(s, core::StrategyKind::HF).meanPerfNorm() +
                   runner.run(s, core::StrategyKind::HM).meanPerfNorm());
        od_perf +=
            0.5 * (runner.run(s, core::StrategyKind::OdF).meanPerfNorm() +
                   runner.run(s, core::StrategyKind::OdM).meanPerfNorm());
    }
    printClaim("profiling gain for HF (avg)", "~2.4x",
               fmt(hf_gain / 3.0, 2) + "x");
    printClaim("profiling gain for HM (avg)", "~2.77x",
               fmt(hm_gain / 3.0, 2) + "x");
    printClaim("hybrid within 8% of SR perf",
               "<= 8%", fmt(100.0 * (1.0 - hybrid_perf / sr_perf), 1) +
                   "% below SR");
    printClaim("hybrid vs fully on-demand perf", "~2.1x better",
               fmt(hybrid_perf / od_perf, 2) + "x better");
}

void
fig11HybridCost(Runner& runner)
{
    printHeader("Figure 11: cost comparison SR / HF / HM "
                "(reserved vs on-demand split)");
    detail::costPanel(runner,
                      {core::StrategyKind::SR, core::StrategyKind::HF,
                       core::StrategyKind::HM});
    const cloud::AwsStylePricing pricing;
    double sr = 0.0;
    double hybrid = 0.0;
    for (workload::ScenarioKind s :
         {workload::ScenarioKind::LowVariability,
          workload::ScenarioKind::HighVariability}) {
        sr += runner.run(s, core::StrategyKind::SR).cost(pricing).total();
        hybrid += 0.5 *
            (runner.run(s, core::StrategyKind::HF).cost(pricing).total() +
             runner.run(s, core::StrategyKind::HM).cost(pricing).total());
    }
    printClaim("hybrid cost saving vs SR (variable scenarios)", "~46%",
               fmt(100.0 * (1.0 - hybrid / sr), 1) + "%");
    double util = 0.0;
    for (workload::ScenarioKind s : workload::kAllScenarios)
        util += runner.run(s, core::StrategyKind::HM)
                    .reservedUtilizationAvg;
    printClaim("reserved utilization in steady state", "~80%",
               fmt(100.0 * util / 3.0, 1) + "%");
}

void
fig12PriceRatio(Runner& runner)
{
    printHeader("Figure 12: cost sensitivity to the on-demand:reserved "
                "price ratio (normalized to static SR at ratio 2.74)");
    // Fill the 3x5 profiled matrix up front: under a ParallelRunner the
    // cells run concurrently; on the serial Runner this is a no-op split.
    runner.prewarm();
    const double base =
        detail::staticSrCost(runner, cloud::AwsStylePricing());
    const double ratios[] = {0.01, 0.5, 1.0, 1.5, 2.0, 2.74, 3.0, 4.0};
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        std::printf("\n-- %s scenario --\n", toString(scenario));
        std::vector<std::vector<std::string>> rows;
        for (core::StrategyKind s : core::kAllStrategies) {
            const core::RunResult& r = runner.run(scenario, s);
            std::vector<std::string> row = {r.strategy};
            for (double ratio : ratios) {
                const cloud::AwsStylePricing pricing(ratio);
                row.push_back(fmt(r.cost(pricing).total() / base, 2));
            }
            rows.push_back(row);
        }
        std::vector<std::string> header = {"strategy"};
        for (double ratio : ratios)
            header.push_back("r=" + fmt(ratio, 2));
        printTable(header, rows);
    }
    printClaim("SR overtakes HM in high variability only at ratio",
               ">= 3", "find the crossover column above");
}

void
fig13Duration(Runner& runner)
{
    printHeader("Figure 13: absolute cost vs scenario duration "
                "(x1000 $, reservations charged as full 1-year terms)");
    runner.prewarm();
    const cloud::AwsStylePricing pricing;
    const double weeks[] = {1, 5, 10, 15, 20, 25, 30, 40, 52, 60};
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        std::printf("\n-- %s scenario --\n", toString(scenario));
        std::vector<std::vector<std::string>> rows;
        for (core::StrategyKind s : core::kAllStrategies) {
            const core::RunResult& r = runner.run(scenario, s);
            std::vector<std::string> row = {r.strategy};
            for (double w : weeks) {
                const auto c =
                    r.costOverHorizon(pricing, sim::weeks(w));
                row.push_back(fmt(c.total() / 1000.0, 1));
            }
            rows.push_back(row);
        }
        std::vector<std::string> header = {"strategy"};
        for (double w : weeks)
            header.push_back(fmt(w, 0) + "wk");
        printTable(header, rows);
    }
    printClaim("static scenario: OdM cheapest short-term, SR beyond",
               "~20-25 weeks", "find the crossover row/col above");
    printClaim("high variability: SR never optimal",
               "HM best beyond ~18 weeks", "compare rows above");
}

namespace {

/** Per-strategy p5-of-perf table over a swept engine-config knob. */
template <typename Configure>
void
sensitivitySweep(Runner& runner, const char* knobHeader,
                 const std::vector<double>& knobs, Configure configure,
                 bool withCost)
{
    const cloud::AwsStylePricing pricing;
    const double base = detail::staticSrCost(runner, pricing);
    // One spec per (strategy x knob) point. runBatch() returns results in
    // spec order — concurrently under a ParallelRunner, serially otherwise
    // — and applies the root seed per the Runner seed contract.
    std::vector<RunSpec> specs;
    for (core::StrategyKind s : core::kAllStrategies) {
        for (double knob : knobs) {
            RunSpec spec;
            spec.scenario = workload::ScenarioKind::HighVariability;
            spec.strategy = s;
            spec.config = runner.baseConfig();
            configure(spec.config, knob);
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<core::RunResult> results = runner.runBatch(specs);
    std::vector<std::vector<std::string>> perf_rows;
    std::vector<std::vector<std::string>> cost_rows;
    std::size_t idx = 0;
    for (core::StrategyKind s : core::kAllStrategies) {
        std::vector<std::string> perf_row = {toString(s)};
        std::vector<std::string> cost_row = {toString(s)};
        for (std::size_t k = 0; k < knobs.size(); ++k, ++idx) {
            const core::RunResult& r = results[idx];
            perf_row.push_back(fmt(100.0 * detail::tailPerf(r), 1));
            cost_row.push_back(fmt(r.cost(pricing).total() / base, 2));
        }
        perf_rows.push_back(perf_row);
        cost_rows.push_back(cost_row);
    }
    std::vector<std::string> header = {"strategy"};
    for (double knob : knobs)
        header.push_back(knobHeader + fmt(knob, 0));
    std::printf("p95-tail performance normalized to isolation (%%):\n");
    printTable(header, perf_rows);
    if (withCost) {
        std::printf("cost (normalized to static SR):\n");
        printTable(header, cost_rows);
    }
}

} // namespace

void
fig14SpinUpAndExternalLoad(Runner& runner)
{
    printHeader("Figure 14a: performance sensitivity to instance "
                "spin-up time (high-variability scenario)");
    sensitivitySweep(
        runner, "t=",
        {0.0, 15.0, 30.0, 60.0, 120.0},
        [](core::EngineConfig& cfg, double knob) {
            cfg.spinUpFixed = knob;
        },
        /*withCost=*/false);
    printClaim("SR unaffected by spin-up; OdF/OdM degrade most",
               "flat SR curve", "compare rows above");

    printHeader("Figure 14b: performance sensitivity to external load "
                "(high-variability scenario)");
    sensitivitySweep(
        runner, "u%=",
        {0.0, 25.0, 50.0, 75.0, 100.0},
        [](core::EngineConfig& cfg, double knob) {
            cfg.externalLoad.meanUtilization = knob / 100.0;
        },
        /*withCost=*/false);
    printClaim("SR immune; OdM degrades most; HM degrades past ~50%",
               "see Section 5.1", "compare rows above");
}

void
fig15Retention(Runner& runner)
{
    printHeader("Figure 15: sensitivity to idle-instance retention time "
                "(multiples of the spin-up overhead, high variability)");
    sensitivitySweep(
        runner, "x",
        {0.0, 10.0, 50.0, 100.0, 250.0, 500.0},
        [](core::EngineConfig& cfg, double knob) {
            cfg.retentionMultiple = knob;
        },
        /*withCost=*/true);
    printClaim("zero retention hurts performance (spin-up churn)",
               "low perf at x0", "compare x0 column");
    printClaim("excessive retention raises OdF/OdM cost",
               "rising cost with retention", "compare cost columns");
}

void
fig16SensitiveApps(Runner& runner)
{
    printHeader("Figure 16: sensitivity to the fraction of "
                "interference-sensitive applications (high variability)");
    const cloud::AwsStylePricing pricing;
    const double base = detail::staticSrCost(runner, pricing);
    const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    // Each point needs its own trace (the sensitive fraction is a
    // scenario-generation knob), so the specs carry scenario overrides and
    // every runBatch() task generates its private trace.
    std::vector<RunSpec> specs;
    for (core::StrategyKind s : core::kAllStrategies) {
        for (double f : fractions) {
            RunSpec spec;
            spec.strategy = s;
            spec.config = runner.baseConfig();
            workload::ScenarioConfig scenario = runner.scenarioConfig(
                workload::ScenarioKind::HighVariability);
            scenario.sensitiveFraction = f;
            spec.scenarioOverride = scenario;
            spec.label = "fig16";
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<core::RunResult> results = runner.runBatch(specs);
    std::vector<std::vector<std::string>> perf_rows;
    std::vector<std::vector<std::string>> cost_rows;
    std::size_t idx = 0;
    for (core::StrategyKind s : core::kAllStrategies) {
        std::vector<std::string> perf_row = {toString(s)};
        std::vector<std::string> cost_row = {toString(s)};
        for (std::size_t k = 0; k < fractions.size(); ++k, ++idx) {
            const core::RunResult& r = results[idx];
            perf_row.push_back(fmt(100.0 * detail::tailPerf(r), 1));
            cost_row.push_back(fmt(r.cost(pricing).total() / base, 2));
        }
        perf_rows.push_back(perf_row);
        cost_rows.push_back(cost_row);
    }
    std::vector<std::string> header = {"strategy"};
    for (double f : fractions)
        header.push_back("f=" + fmt(100.0 * f, 0) + "%");
    std::printf("p95-tail performance normalized to isolation (%%):\n");
    printTable(header, perf_rows);
    std::printf("cost (normalized to static SR):\n");
    printTable(header, cost_rows);
    printClaim("hybrids hold up until ~80% sensitive apps",
               "queueing dominates beyond", "compare f=80/100 columns");
    printClaim("on-demand cost surges with sensitive fraction",
               "less co-scheduling possible", "compare cost rows");
}

void
fig17PricingModels(Runner& runner)
{
    printHeader("Figure 17: sensitivity to the cloud pricing model");
    const cloud::AwsStylePricing aws;
    const cloud::AzureOnDemandPricing azure;
    const cloud::GceSustainedUsePricing gce;
    const double base = detail::staticSrCost(runner, aws);
    std::vector<std::vector<std::string>> rows;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind s : core::kAllStrategies) {
            const core::RunResult& r = runner.run(scenario, s);
            rows.push_back({std::string(toString(scenario)), r.strategy,
                            fmt(r.cost(aws).total() / base, 2),
                            fmt(r.cost(azure).total() / base, 2),
                            fmt(r.cost(gce).total() / base, 2)});
        }
    }
    printTable({"scenario", "strategy", "aws reserved+od",
                "azure od-only", "gce od+discounts"},
               rows);

    const auto& high = workload::ScenarioKind::HighVariability;
    const double hm_azure =
        runner.run(high, core::StrategyKind::HM).cost(azure).total();
    const double odf_azure =
        runner.run(high, core::StrategyKind::OdF).cost(azure).total();
    const double hm_gce =
        runner.run(high, core::StrategyKind::HM).cost(gce).total();
    const double odf_gce =
        runner.run(high, core::StrategyKind::OdF).cost(gce).total();
    printClaim("high var: HM vs OdF under Azure pricing", "~32% lower",
               fmt(100.0 * (1.0 - hm_azure / odf_azure), 1) + "% lower");
    printClaim("high var: HM vs OdF under GCE discounts", "~30% lower",
               fmt(100.0 * (1.0 - hm_gce / odf_gce), 1) + "% lower");
}

void
fig18Allocation(Runner& runner)
{
    printHeader("Figure 18: resource allocation over time, "
                "high-variability scenario (cores)");
    const workload::ArrivalTrace& trace =
        runner.trace(workload::ScenarioKind::HighVariability);
    for (core::StrategyKind s : core::kAllStrategies) {
        const core::RunResult& r =
            runner.run(workload::ScenarioKind::HighVariability, s);
        std::printf("\n-- configuration %s --\n", r.strategy.c_str());
        std::printf("  %8s %10s %10s %10s\n", "t(min)", "required",
                    "reserved", "on-demand");
        const std::size_t points = 13;
        const auto req =
            trace.requiredCores().resample(0.0, r.makespan, points);
        const auto res =
            r.reservedAllocated.resample(0.0, r.makespan, points);
        const auto od =
            r.onDemandAllocated.resample(0.0, r.makespan, points);
        for (std::size_t i = 0; i < points; ++i) {
            std::printf("  %8.0f %10.0f %10.0f %10.0f\n",
                        req[i].t / 60.0, req[i].v, res[i].v, od[i].v);
        }
    }
}

void
fig19And20Utilization(Runner& runner)
{
    printHeader("Figures 19-20: per-instance utilization, "
                "high-variability scenario");
    for (core::StrategyKind s : core::kAllStrategies) {
        const core::RunResult& r =
            runner.run(workload::ScenarioKind::HighVariability, s);
        std::printf("\n-- strategy %s: %zu instances over the run --\n",
                    r.strategy.c_str(), r.instanceTimelines.size());
        // Condensed heatmap: time buckets x (live count, utilization
        // quartiles across live instances).
        const std::size_t buckets = 12;
        std::printf("  %8s %6s | reserved util p25/p50/p75 | on-demand "
                    "util p25/p50/p75 (live)\n",
                    "t(min)", "live");
        for (std::size_t b = 0; b < buckets; ++b) {
            const sim::Time t =
                r.makespan * static_cast<double>(b) / (buckets - 1);
            sim::SampleSet res_util;
            sim::SampleSet od_util;
            for (const auto& [id, tl] : r.instanceTimelines) {
                if (t < tl.acquiredAt || t > tl.releasedAt)
                    continue;
                // Find the utilization sample at or before t.
                double u = 0.0;
                bool found = false;
                for (const auto& p : tl.utilization) {
                    if (p.t > t)
                        break;
                    u = p.v;
                    found = true;
                }
                if (!found)
                    continue;
                (tl.reserved ? res_util : od_util).add(u);
            }
            auto q = [](const sim::SampleSet& ss, double p) {
                return ss.empty() ? 0.0 : 100.0 * ss.quantile(p);
            };
            std::printf("  %8.0f %6zu | %5.0f %5.0f %5.0f | %5.0f %5.0f "
                        "%5.0f (%zu)\n",
                        t / 60.0, res_util.count() + od_util.count(),
                        q(res_util, 0.25), q(res_util, 0.5),
                        q(res_util, 0.75), q(od_util, 0.25),
                        q(od_util, 0.5), q(od_util, 0.75),
                        od_util.count());
        }
    }
    // Section 5.4 counters.
    const auto& odm = runner.run(workload::ScenarioKind::HighVariability,
                                 core::StrategyKind::OdM);
    const auto& hm = runner.run(workload::ScenarioKind::HighVariability,
                                core::StrategyKind::HM);
    printClaim("OdM instances released immediately after use", "~43%",
               fmt(100.0 * odm.immediateReleases /
                       std::max<std::size_t>(odm.acquisitions, 1), 1) +
                   "%");
    printClaim("HM instances released immediately after use", "~11%",
               fmt(100.0 * hm.immediateReleases /
                       std::max<std::size_t>(hm.acquisitions, 1), 1) +
                   "%");
}

void
fig21Breakdown(Runner& runner)
{
    printHeader("Figure 21: allocation breakdown by application type, "
                "low-variability scenario, HM");
    const core::RunResult& r = runner.run(
        workload::ScenarioKind::LowVariability, core::StrategyKind::HM);
    static const char* kGroups[] = {"hadoop", "spark", "memcached"};
    for (const char* side : {"reserved", "on-demand"}) {
        std::printf("\n%s resources (cores):\n", side);
        std::printf("  %8s %10s %10s %10s %10s\n", "t(min)", "allocated",
                    kGroups[0], kGroups[1], kGroups[2]);
        const sim::StepSeries& alloc = side == std::string("reserved")
            ? r.reservedAllocated
            : r.onDemandAllocated;
        const std::size_t points = 13;
        for (std::size_t i = 0; i < points; ++i) {
            const sim::Time t =
                r.makespan * static_cast<double>(i) / (points - 1);
            std::printf("  %8.0f %10.0f", t / 60.0, alloc.at(t));
            for (const char* g : kGroups) {
                const std::string key =
                    std::string(g) + "/" + side;
                const auto it = r.breakdown.find(key);
                std::printf(" %10.0f",
                            it == r.breakdown.end() ? 0.0
                                                    : it->second.at(t));
            }
            std::printf("\n");
        }
    }
    printClaim("memcached occupies reserved; batch overflows on-demand",
               "Figure 21 shape", "compare group columns per side");
}

} // namespace hcloud::exp
