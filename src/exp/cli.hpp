/**
 * @file
 * Shared command-line handling for the figure benches.
 *
 * Every bench accepts the same positional arguments plus the artifact
 * flags, so the drivers stay one-screen mains:
 *
 *   bench_figNN [loadScale] [seed] [threads] [--json <path>]
 *               [--trace <path>] [--timeline <path>]
 *               [--metrics-port <port>]
 *
 *  - `--json <path>` writes a machine-readable JSON report of every run
 *    the bench executed (exp::writeJsonReport);
 *  - `--trace <path>` forces tracing on (EngineConfig trace mode On,
 *    overriding HCLOUD_TRACE) and writes the per-run event streams as
 *    JSONL to the path. Tracing to a path streams through per-run
 *    TraceSink files ("<path>.<tag>.part", merged into <path> and
 *    removed at exit), so traces are complete regardless of
 *    ringCapacity;
 *  - with no `--trace` flag, tracing follows the HCLOUD_TRACE environment
 *    knob: unset/0/off disables it, 1/on enables it, and any other value
 *    enables it AND names the default JSONL output path;
 *  - HCLOUD_TRACE_RING overrides the tracer ring size in events (used by
 *    CI to force ring wraps far below the default 64Ki and prove sink
 *    completeness);
 *  - `--timeline <path>` forces cluster-state timeline sampling on
 *    (EngineConfig timeline mode On, overriding HCLOUD_TIMELINE) and
 *    writes the per-run sample streams as JSONL through the same
 *    "<path>.<tag>.part" sink machinery; without the flag, sampling
 *    follows HCLOUD_TIMELINE (same token semantics as HCLOUD_TRACE).
 *    HCLOUD_TIMELINE_CADENCE overrides the sampling period (virtual
 *    seconds) and HCLOUD_TIMELINE_RING the ring size in samples;
 *  - `--metrics-port <port>` serves the process metrics registry as
 *    Prometheus text on 127.0.0.1:<port> for the lifetime of the bench
 *    (port 0 binds an ephemeral port; the bound port is printed). The
 *    HCLOUD_METRICS_PORT environment variable supplies a default when
 *    the flag is absent. Off by default; serving never affects results;
 *  - sweep-capable benches (fig12/fig15/fig16) additionally accept
 *    `--seeds <n>` and `--ci`: either switches the bench from its
 *    single-seed figure to an exp::SweepScheduler multi-seed sweep
 *    reporting mean +/- 95% CI per cell (--ci alone defaults to 5
 *    seeds). The positional seed becomes the sweep's base seed.
 *
 * Positional values are validated strictly (full-token numeric parses
 * with range checks); a bad value sets BenchCli::parseError and
 * errorMessage instead of silently running with a zeroed option.
 */

#ifndef HCLOUD_EXP_CLI_HPP
#define HCLOUD_EXP_CLI_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "obs/metrics_http.hpp"

namespace hcloud::exp {

/** Parsed bench command line. */
struct BenchCli
{
    ExperimentOptions options;
    /** JSON report output path (empty = no report). */
    std::string jsonPath;
    /** Trace JSONL output path (empty = HCLOUD_TRACE default, if any). */
    std::string tracePath;
    /** True when --trace was given (forces tracing on). */
    bool traceRequested = false;
    /** Timeline JSONL output path (empty = HCLOUD_TIMELINE default). */
    std::string timelinePath;
    /** True when --timeline was given (forces timeline sampling on). */
    bool timelineRequested = false;
    /** Seeds per cell from --seeds (0 = flag not given). */
    std::size_t seeds = 0;
    /** True when --ci was given (requests a multi-seed CI sweep even
     *  without an explicit --seeds). */
    bool ciRequested = false;
    /** True when --metrics-port was given. */
    bool metricsRequested = false;
    /** Port from --metrics-port (0 = bind an ephemeral port). Only
     *  meaningful when metricsRequested is set. */
    std::uint16_t metricsPort = 0;
    /** True when an unknown flag, missing value, or malformed positional
     *  was encountered. */
    bool parseError = false;
    /** Human-readable cause when parseError is set ("" otherwise). It is
     *  also printed to stderr by parseBenchCli. */
    std::string errorMessage;

    /** Engine config with the trace mode implied by the flags, the sink
     *  stem implied by the effective trace path, and the ring override
     *  from HCLOUD_TRACE_RING. */
    core::EngineConfig engineConfig() const;

    /** True when any artifact will be written — benches use this to turn
     *  on ad-hoc result recording (Runner::setRecordAdhoc) so uncached
     *  sweep runs show up in the report too. */
    bool wantsArtifacts() const;

    /** Effective trace output path: --trace value or the HCLOUD_TRACE
     *  named default; empty when tracing produces no file. */
    std::string effectiveTracePath() const;

    /** Effective timeline output path: --timeline value or the
     *  HCLOUD_TIMELINE named default; empty when sampling produces no
     *  file. */
    std::string effectiveTimelinePath() const;

    /**
     * Port to serve live metrics on, if any: the --metrics-port value
     * when the flag was given, else HCLOUD_METRICS_PORT when it parses
     * as a port (malformed values are ignored, mirroring the
     * HCLOUD_TRACE_RING convention). nullopt = do not serve.
     */
    std::optional<std::uint16_t> effectiveMetricsPort() const;

    /** True when the bench should run a multi-seed CI sweep
     *  (--seeds and/or --ci was given). */
    bool sweepRequested() const { return seeds > 0 || ciRequested; }

    /** Seeds per cell for a sweep: --seeds value, or 5 under a bare
     *  --ci. */
    std::size_t effectiveSeeds() const { return seeds > 0 ? seeds : 5; }
};

/**
 * Parse `[loadScale] [seed] [threads] [--json p] [--trace p]`.
 * On a malformed flag, prints usage to stderr and sets parseError.
 *
 * @param allowSweep accept `--seeds <n>` / `--ci` (the sweep-capable
 * figure benches); other benches keep rejecting them as unknown flags.
 *
 * The HCLOUD_THREADS environment knob is validated here, at the CLI
 * edge: a malformed value (which runtime::defaultThreadCount() would
 * reject by throwing mid-run) becomes a parseError with the structured
 * reason up front.
 */
BenchCli parseBenchCli(int argc, char** argv, bool allowSweep = false);

/**
 * Write the artifacts requested by @p cli from @p runner's memoized
 * matrix: the JSON report (--json, with @p sweeps serialized into the
 * schema-v4 `sweeps` array) and the trace JSONL (--trace or the
 * HCLOUD_TRACE named path). Prints one line per file written.
 * @return false when any requested artifact failed to write.
 */
bool writeBenchArtifacts(const BenchCli& cli, const std::string& title,
                         const Runner& runner,
                         const std::vector<SweepResult>& sweeps = {});

/**
 * RAII wrapper a bench main drops on its stack: starts the metrics HTTP
 * server when the CLI asked for one (effectiveMetricsPort()), prints the
 * scrape URL, and stops the server on destruction. When no port was
 * requested this is a no-op, so benches need no conditional.
 *
 * Startup pre-registers `hcloud_run_completed_total` so scrapers polling
 * for progress see the counter at 0 before the first run lands instead
 * of a missing series. A bind failure is reported on stderr and exposed
 * via failed(); benches treat it as a CLI-level error.
 */
class ScopedMetricsServer
{
  public:
    explicit ScopedMetricsServer(const BenchCli& cli);
    ~ScopedMetricsServer();

    ScopedMetricsServer(const ScopedMetricsServer&) = delete;
    ScopedMetricsServer& operator=(const ScopedMetricsServer&) = delete;

    /** True when a server was requested but could not start. */
    bool failed() const { return failed_; }

    /** Bound port while serving, 0 otherwise. */
    std::uint16_t port() const { return server_.boundPort(); }

  private:
    obs::MetricsHttpServer server_;
    bool failed_ = false;
};

} // namespace hcloud::exp

#endif // HCLOUD_EXP_CLI_HPP
