/**
 * @file
 * Plain-text reporting helpers: aligned tables, boxplot rows, series
 * dumps, and paper-vs-measured comparison lines.
 */

#ifndef HCLOUD_EXP_REPORT_HPP
#define HCLOUD_EXP_REPORT_HPP

#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/timeseries.hpp"

namespace hcloud::exp {

/** Format a double with the given precision. */
std::string fmt(double v, int precision = 2);

/** Section banner. */
void printHeader(const std::string& title);

/** Aligned table: header row plus data rows. */
void printTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/** One boxplot row (p5 / p25 / mean / p75 / p95), paper-figure style. */
std::vector<std::string> boxplotRow(const std::string& label,
                                    const sim::BoxplotSummary& b,
                                    int precision = 1);

/** Dump a step series resampled on @p points grid points. */
void printSeries(const std::string& label, const sim::StepSeries& series,
                 double t0, double t1, std::size_t points,
                 double valueScale = 1.0);

/**
 * Paper-vs-measured comparison line, e.g.
 *   "hybrid vs on-demand speedup    paper ~2.1x   measured 2.3x".
 */
void printClaim(const std::string& label, const std::string& paper,
                const std::string& measured);

} // namespace hcloud::exp

#endif // HCLOUD_EXP_REPORT_HPP
