/**
 * @file
 * Machine-readable run artifacts: JSON reports of a runner's memoized
 * result matrix and JSONL dumps of the per-run trace streams.
 *
 * Two artifact kinds with different contracts:
 *
 *  - JSON report (writeJsonReport): summary statistics, counters, the
 *    metrics-registry snapshot and wall-clock telemetry per cell. The
 *    telemetry makes this file machine-comparable but NOT byte-stable
 *    across runs.
 *  - Trace JSONL (writeTraceJsonl): one `{"run":...}` header line per
 *    cell followed by its trace events. Contains only simulation-derived
 *    data, so for a fixed seed the file is byte-identical at any thread
 *    count (the PR's determinism acceptance check diffs these files).
 */

#ifndef HCLOUD_EXP_REPORT_JSON_HPP
#define HCLOUD_EXP_REPORT_JSON_HPP

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"

namespace hcloud::exp {

/**
 * Version stamped as `schemaVersion` at the top of every JSON report.
 * Bump it (and tests/golden/report_schema_v<N>.txt) whenever the report
 * shape changes, so downstream tooling can rely on the layout.
 * History: v2 added `p99` to the histogram rows of `runs[].metrics`;
 * v3 added the `runs[].timeline` section (cluster-state samples);
 * v4 added the top-level `sweeps` array (multi-seed aggregates with
 * mean/stddev/95% CI per cell, exp::SweepScheduler).
 */
inline constexpr std::uint64_t kReportSchemaVersion = 4;

/** Serialize the summary view of one RunResult as a JSON object. */
void runResultJson(obs::JsonWriter& w, const core::RunResult& result);

/**
 * Write a JSON report of every memoized cell in @p runner to @p path,
 * followed by the multi-seed aggregates of @p sweeps (the `sweeps`
 * array is always present; empty when no sweep ran).
 * @return false when the file cannot be opened.
 */
bool writeJsonReport(const std::string& path, const std::string& title,
                     const Runner& runner,
                     const std::vector<SweepResult>& sweeps = {});

/**
 * Write the trace streams of every memoized cell as JSONL: a
 * `{"run":{...}}` header line per cell, then its events in order.
 * Runs that streamed to a TraceSink are spliced from their per-run part
 * files (in the same deterministic result order); @p removeParts deletes
 * each part file after a successful merge. Deterministic byte-for-byte
 * for a fixed seed (see file comment).
 * @return false when the file cannot be opened, a part file is missing,
 * or any run reports a failed sink (its stream would be incomplete).
 */
bool writeTraceJsonl(const std::string& path, const Runner& runner,
                     bool removeParts = false);

/**
 * Write the cluster-state timeline streams of every memoized cell as
 * JSONL: a `{"run":{...}}` header line per cell, then its samples in
 * order. Same part-file splicing, deterministic ordering and
 * byte-identity contract as writeTraceJsonl.
 * @return false when the file cannot be opened, a part file is missing,
 * or any run reports a failed sink.
 */
bool writeTimelineJsonl(const std::string& path, const Runner& runner,
                        bool removeParts = false);

} // namespace hcloud::exp

#endif // HCLOUD_EXP_REPORT_JSON_HPP
