/**
 * @file
 * Runner: memoized (scenario x strategy x profiling) run matrix.
 *
 * Several figures share runs (e.g. the cost figures re-price the runs of
 * the performance figures), so the runner caches traces and results
 * within one process.
 *
 * ## Seed derivation
 *
 * Every run driven through a Runner uses `options().seed` as the engine's
 * root seed, on every path — the memoized run() matrix, one-off runWith()
 * calls and runBatch() sweeps alike (a RunSpec may opt out with an
 * explicit seedOverride). The engine then derives independent named child
 * streams per subsystem via sim::Rng::child(), and per-entity streams
 * keyed by stable ids below that, so neither the order in which cells
 * execute nor the thread they execute on can perturb any draw. This is
 * what makes the parallel runtime (runtime::ParallelRunner) bit-identical
 * to serial execution.
 *
 * ## Streaming trace sinks
 *
 * When the base config's TraceConfig carries a `sinkStem`, every run a
 * runner executes derives a private sink file ("<stem>.<tag>.part") so
 * concurrent runs never share a file descriptor and on-disk traces are
 * never ring-truncated. exp::writeTraceJsonl merges the per-run files in
 * deterministic result order, which keeps the merged artifact
 * byte-identical across thread counts. Tags: matrix cells use
 * "<scenario>-<strategy>[-unprofiled]"; batch/ad-hoc runs use a per-runner
 * sequence number (their identity lives in the merged header lines, not
 * the file name).
 */

#ifndef HCLOUD_EXP_RUNNER_HPP
#define HCLOUD_EXP_RUNNER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/types.hpp"
#include "workload/scenario.hpp"

namespace hcloud::exp {

/** Options shared by experiment drivers. */
struct ExperimentOptions
{
    /** Scales every scenario's load curve (1.0 = paper scale). */
    double loadScale = 1.0;
    /** Root seed. */
    std::uint64_t seed = 42;
    /**
     * Worker threads for parallel drivers (runtime::ParallelRunner and
     * the sampling figures). 0 = auto: the HCLOUD_THREADS environment
     * variable if set, otherwise hardware_concurrency. 1 forces the
     * serial path. Plain Runner ignores this.
     */
    std::size_t threads = 0;
};

/**
 * One cell of work for runBatch(): a strategy run against either a shared
 * scenario trace or a custom per-spec scenario (e.g. the Figure 16
 * sensitive-fraction sweep).
 */
struct RunSpec
{
    /** Scenario whose shared trace to run (unless overridden below). */
    workload::ScenarioKind scenario = workload::ScenarioKind::Static;
    core::StrategyKind strategy = core::StrategyKind::SR;
    /** Engine configuration; its seed is replaced per the class contract. */
    core::EngineConfig config{};
    /** Generate a private trace from this config instead of the shared one. */
    std::optional<workload::ScenarioConfig> scenarioOverride;
    /** Scenario label recorded in the result; empty = scenario name. */
    std::string label;
    /** Escape hatch from the root-seed contract (multi-seed studies). */
    std::optional<std::uint64_t> seedOverride;
};

/**
 * Memoized run matrix over the three scenarios and five strategies.
 *
 * The virtual cell API (trace / run / runWith / runBatch / prewarm) is the
 * extension seam for runtime::ParallelRunner, which executes the same
 * cells concurrently; this base class is strictly serial and not
 * thread-safe.
 */
class Runner
{
  public:
    explicit Runner(ExperimentOptions options = {},
                    core::EngineConfig baseConfig = {});
    virtual ~Runner() = default;

    const ExperimentOptions& options() const { return options_; }
    const core::EngineConfig& baseConfig() const { return baseConfig_; }

    /** Key of one memoized cell. */
    using CellKey =
        std::tuple<workload::ScenarioKind, core::StrategyKind, bool>;

    /**
     * The memoized result matrix (cells executed so far), in sorted key
     * order — the deterministic iteration order the JSON/JSONL report
     * writers rely on. Do not call concurrently with cell execution.
     */
    const std::map<CellKey, core::RunResult>& results() const
    {
        return results_;
    }

    /**
     * When enabled, runWith()/runBatch() results — normally returned
     * without caching — are also copied into an ad-hoc list so the
     * JSON/JSONL artifact writers can report sweep runs. Off by default:
     * RunResult copies are not cheap. Not thread-safe to toggle while
     * cells execute.
     */
    void setRecordAdhoc(bool record) { recordAdhoc_ = record; }
    const std::vector<core::RunResult>& adhocResults() const
    {
        return adhoc_;
    }

    /** Scenario-generation config prefilled with this runner's options. */
    workload::ScenarioConfig scenarioConfig(
        workload::ScenarioKind scenario) const;

    /** Generated (and cached) trace of a scenario. */
    virtual const workload::ArrivalTrace& trace(
        workload::ScenarioKind scenario);

    /** Run (and cache) one cell of the matrix. */
    virtual const core::RunResult& run(workload::ScenarioKind scenario,
                                       core::StrategyKind strategy,
                                       bool profiling = true);

    /**
     * Run without caching, with a custom engine config. The config's seed
     * is replaced by options().seed (see the seed-derivation contract
     * above), so sweeps that tweak other knobs stay comparable with the
     * memoized matrix without every caller re-plumbing the seed.
     */
    virtual core::RunResult runWith(workload::ScenarioKind scenario,
                                    core::StrategyKind strategy,
                                    const core::EngineConfig& config,
                                    const std::string& label = {});

    /**
     * Execute a batch of uncached cells and return their results in spec
     * order. Serial here; runtime::ParallelRunner executes the specs
     * concurrently with an identical, submission-ordered result vector.
     */
    virtual std::vector<core::RunResult> runBatch(
        const std::vector<RunSpec>& specs);

    /**
     * Populate the memoized matrix (all scenarios x strategies, plus the
     * unprofiled cells when requested). A no-op for cells already cached;
     * the parallel runner overrides this to fill the cache concurrently.
     */
    virtual void prewarm(bool includeUnprofiled = false);

  protected:
    /**
     * Run one spec exactly as the serial paths do: private trace if the
     * spec overrides the scenario, @p sharedTrace otherwise. Both the
     * serial and the parallel runBatch() funnel through this so the two
     * paths cannot diverge. @p sinkTag names the spec's private sink
     * file when the spec's config carries a sinkStem (see class docs).
     */
    core::RunResult executeSpec(const RunSpec& spec,
                                const workload::ArrivalTrace* sharedTrace,
                                const std::string& sinkTag) const;

    /**
     * Fold one finished run into the process-wide metrics registry
     * (obs::ProcessMetrics::instance(), `hcloud_run_*` namespace): the
     * run-completion counter, per-phase wall-clock from the phase
     * profiler, and the run's own registry snapshot as labeled families.
     * Called by every execution path, serial and parallel alike; safe
     * from concurrent tasks (the process registry is thread-safe) and
     * invisible to the simulation, so determinism contracts hold.
     */
    static void publishRunCompleted(const core::RunResult& result);

    /** Count one memoized matrix cell landing in the cache
     *  (`hcloud_cell_completed_total`). */
    static void publishCellCompleted();

    /** Sink tag of a memoized matrix cell ("static-HM[-unprofiled]"). */
    static std::string cellSinkTag(workload::ScenarioKind scenario,
                                   core::StrategyKind strategy,
                                   bool profiling);

    /** Derive cfg.trace.sinkPath and cfg.timeline.sinkPath from their
     *  sinkStems + @p tag (no-op for each empty stem). */
    static void applySinkTag(core::EngineConfig& cfg,
                             const std::string& tag);

    /** Process-unique tag for uncached runs ("a<N>", "b<N>x<i>"). */
    std::uint64_t nextSinkSeq() { return sinkSeq_++; }

    /** Wall-clock spent generating a scenario's shared trace (telemetry;
     *  attributed to every cell consuming the trace). */
    double traceGenSeconds(workload::ScenarioKind scenario) const;

    ExperimentOptions options_;
    core::EngineConfig baseConfig_;
    std::map<workload::ScenarioKind, workload::ArrivalTrace> traces_;
    std::map<workload::ScenarioKind, double> traceGenSec_;
    std::map<CellKey, core::RunResult> results_;
    bool recordAdhoc_ = false;
    std::vector<core::RunResult> adhoc_;
    /** Uncached-run sink-file sequence (atomic: runWith() may be called
     *  from concurrent caller threads under ParallelRunner). */
    std::atomic<std::uint64_t> sinkSeq_{0};
};

} // namespace hcloud::exp

#endif // HCLOUD_EXP_RUNNER_HPP
