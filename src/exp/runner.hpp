/**
 * @file
 * Runner: memoized (scenario x strategy x profiling) run matrix.
 *
 * Several figures share runs (e.g. the cost figures re-price the runs of
 * the performance figures), so the runner caches traces and results
 * within one process.
 */

#ifndef HCLOUD_EXP_RUNNER_HPP
#define HCLOUD_EXP_RUNNER_HPP

#include <map>
#include <tuple>

#include "core/engine.hpp"
#include "core/types.hpp"
#include "workload/scenario.hpp"

namespace hcloud::exp {

/** Options shared by experiment drivers. */
struct ExperimentOptions
{
    /** Scales every scenario's load curve (1.0 = paper scale). */
    double loadScale = 1.0;
    /** Root seed. */
    std::uint64_t seed = 42;
};

/**
 * Memoized run matrix over the three scenarios and five strategies.
 */
class Runner
{
  public:
    explicit Runner(ExperimentOptions options = {},
                    core::EngineConfig baseConfig = {});

    const ExperimentOptions& options() const { return options_; }
    const core::EngineConfig& baseConfig() const { return baseConfig_; }

    /** Generated (and cached) trace of a scenario. */
    const workload::ArrivalTrace& trace(workload::ScenarioKind scenario);

    /** Run (and cache) one cell of the matrix. */
    const core::RunResult& run(workload::ScenarioKind scenario,
                               core::StrategyKind strategy,
                               bool profiling = true);

    /** Run without caching, with a custom engine config. */
    core::RunResult runWith(workload::ScenarioKind scenario,
                            core::StrategyKind strategy,
                            const core::EngineConfig& config);

  private:
    ExperimentOptions options_;
    core::EngineConfig baseConfig_;
    std::map<workload::ScenarioKind, workload::ArrivalTrace> traces_;
    std::map<std::tuple<workload::ScenarioKind, core::StrategyKind, bool>,
             core::RunResult>
        results_;
};

} // namespace hcloud::exp

#endif // HCLOUD_EXP_RUNNER_HPP
