#include "exp/figures.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cloud/pricing.hpp"
#include "cloud/provider.hpp"
#include "core/queue_estimator.hpp"
#include "exp/figures_detail.hpp"
#include "exp/report.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "workload/archetypes.hpp"
#include "workload/batch_model.hpp"
#include "workload/latency_model.hpp"

namespace hcloud::exp {

namespace {

/** Instance types shown in Figures 1-2, smallest to largest. */
const char* kLadder[] = {"micro", "st1", "st2", "st8", "m16"};

/**
 * One (provider x instance-type) sampling cell of Figures 1-2. The cells
 * are independent — each builds its own simulator and provider from a
 * named child seed — so the figure drivers fan them out on the runtime
 * thread pool; parallelMap returns rows in ladder order, bit-identical to
 * the serial loop.
 */
struct SamplingCell
{
    cloud::ProviderProfile profile;
    const char* type;
};

std::vector<SamplingCell>
samplingCells()
{
    std::vector<SamplingCell> cells;
    for (const auto& profile :
         {cloud::ProviderProfile::ec2(), cloud::ProviderProfile::gce()}) {
        for (const char* type_name : kLadder)
            cells.push_back({profile, type_name});
    }
    return cells;
}


/**
 * Simulate one batch job (Figure 1's Mahout recommender) to completion on
 * a dedicated fresh instance of the given type and return minutes (or a
 * negative value when the platform killed the VM).
 *
 * The job follows Amdahl scaling with serial fraction ~0.35 (measured
 * Hadoop jobs on a single node stop scaling well past a few cores), so
 * the vCPU ladder compresses completion times the way Figure 1 shows
 * rather than linearly.
 */
double
batchCompletionOn(cloud::Instance& inst, const workload::JobSpec& spec,
                  sim::Time start)
{
    if (inst.faulty())
        return -1.0;
    constexpr double kSerialFraction = 0.35;
    const double sens = spec.sensitivityScalar();
    const double v = inst.type().vcpus;
    const double speedup =
        1.0 / (kSerialFraction + (1.0 - kSerialFraction) / v);
    // spec.idealDuration is the single-core, quality-1 duration.
    double remaining = spec.idealDuration;
    const sim::Duration dt = 5.0;
    sim::Time t = start;
    while (remaining > 0.0 && t < start + sim::hours(10.0)) {
        t += dt;
        const double q = inst.effectiveQuality(t, sens, std::nullopt);
        remaining -= dt * q * speedup;
    }
    return (t - start) / 60.0;
}

} // namespace

void
fig01VariabilityBatch(const ExperimentOptions& opt)
{
    printHeader("Figure 1: Hadoop completion-time variability "
                "across instance types (40 instances each)");
    // The reference job: a Mahout recommender that takes ~47 min on a
    // dedicated 16-vCPU instance (115 single-core minutes with a 0.35
    // serial fraction).
    workload::JobSpec spec;
    spec.kind = workload::AppKind::HadoopRecommender;
    spec.coresIdeal = 16.0;
    spec.idealDuration = 115.0 * 60.0;
    sim::Rng sens_rng(opt.seed);
    spec.sensitivity =
        workload::generateSensitivity(spec.kind, sens_rng);

    const std::vector<SamplingCell> cells = samplingCells();
    runtime::ThreadPool pool(opt.threads);
    const std::vector<std::vector<std::string>> rows = runtime::parallelMap(
        pool, cells.size(), [&](std::size_t c) {
            const SamplingCell& cell = cells[c];
            sim::Simulator simulator;
            cloud::CloudProvider provider(
                simulator, cell.profile, {},
                sim::Rng(opt.seed)
                    .child(cell.profile.name)
                    .child(cell.type));
            const auto& type =
                cloud::InstanceTypeCatalog::defaultCatalog().byName(
                    cell.type);
            sim::SampleSet minutes;
            int failures = 0;
            for (int i = 0; i < 40; ++i) {
                cloud::Instance* inst =
                    provider.acquire(type, nullptr);
                inst->setState(cloud::InstanceState::Running);
                const double m =
                    batchCompletionOn(*inst, spec, simulator.now());
                if (m < 0.0) {
                    ++failures;
                } else {
                    minutes.add(m);
                }
            }
            auto row = boxplotRow(std::string(cell.profile.name) + "/" +
                                      cell.type,
                                  minutes.boxplot(), 1);
            row.push_back(std::to_string(failures));
            return row;
        });
    printTable({"provider/type", "p5(min)", "p25", "mean", "p75", "p95",
                "killed"},
               rows);
    printClaim("EC2 micro jobs killed by the platform", "several of 40",
               "see 'killed' column");
    printClaim("variability shrinks for >=8 vCPU instances",
               "tight m16 violins", "compare p95-p5 spread");
}

std::vector<std::string>
fig02BoxplotHeader()
{
    // Each row value is an across-instance quantile of the per-instance
    // p95-over-time of modeled p99 latency, so the headers carry the
    // inner statistic: "p95(p99us)" is NOT a p95 of raw latencies.
    return {"provider/type", "p5(p99us)", "p25(p99us)", "mean(p99us)",
            "p75(p99us)", "p95(p99us)"};
}

void
fig02VariabilityMemcached(const ExperimentOptions& opt)
{
    printHeader("Figure 2: memcached p99 variability across instance "
                "types (40 instances each, load scaled by vCPUs)");
    sim::Rng sens_rng(opt.seed + 1);
    const workload::ResourceVector sensitivity =
        workload::generateSensitivity(workload::AppKind::Memcached,
                                      sens_rng);
    const double sens =
        workload::interferenceSensitivity(sensitivity);

    const std::vector<SamplingCell> cells = samplingCells();
    runtime::ThreadPool pool(opt.threads);
    const std::vector<std::vector<std::string>> rows = runtime::parallelMap(
        pool, cells.size(), [&](std::size_t c) {
            const SamplingCell& cell = cells[c];
            sim::Simulator simulator;
            cloud::CloudProvider provider(
                simulator, cell.profile, {},
                sim::Rng(opt.seed + 1)
                    .child(cell.profile.name)
                    .child(cell.type));
            const auto& type =
                cloud::InstanceTypeCatalog::defaultCatalog().byName(
                    cell.type);
            // Clients scaled with vCPUs: equal, moderate per-core load
            // everywhere (the paper keeps all instances at a similar,
            // non-saturating system load).
            const double load = type.vcpus *
                workload::latency_model::kRpsPerCore * 0.35;
            sim::SampleSet p99s;
            for (int i = 0; i < 40; ++i) {
                cloud::Instance* inst = provider.acquire(type, nullptr);
                inst->setState(cloud::InstanceState::Running);
                sim::SampleSet samples;
                for (sim::Time t = 10.0; t <= sim::minutes(30.0);
                     t += 10.0) {
                    const double q =
                        inst->effectiveQuality(t, sens, std::nullopt);
                    const double pressure =
                        inst->interferencePressure(t, std::nullopt);
                    const double q_cap = 0.65 * q + 0.35;
                    samples.add(workload::latency_model::p99Us(
                        load, type.vcpus, q_cap, sens * pressure));
                }
                p99s.add(samples.quantile(0.95));
            }
            return boxplotRow(std::string(cell.profile.name) + "/" +
                                  cell.type,
                              p99s.boxplot(), 0);
        });
    printTable(fig02BoxplotHeader(), rows);
    printClaim("small instances: severe tail variability",
               "100s-1400 us spread", "compare p95 across sizes");
    printClaim("GCE beats EC2 on tail latency", "lower GCE p95",
               "compare providers");
}

void
table1StrategyMatrix()
{
    printHeader("Table 1: configuration comparison");
    printTable(
        {"configuration", "cost", "perf unpredictability", "spin-up",
         "flexibility", "typical usage"},
        {
            {"Reserved", "high upfront, low per hour", "no", "no", "no",
             "long-term"},
            {"On-demand", "no upfront, high per hour", "yes", "yes",
             "yes", "short-term"},
            {"Hybrid", "medium upfront, medium per hour", "low", "some",
             "yes", "long-term"},
        });
    const cloud::AwsStylePricing pricing;
    const auto& st16 =
        cloud::InstanceTypeCatalog::defaultCatalog().byName("st16");
    std::printf("\nconcrete prices (st16): on-demand $%.3f/h, reserved "
                "$%.3f/h effective, upfront $%.0f/yr (ratio %.2f)\n",
                pricing.onDemandHourly(st16),
                pricing.reservedEffectiveHourly(st16),
                pricing.reservedUpfront(st16), pricing.ratio());
}

void
table2Scenarios(const ExperimentOptions& opt)
{
    printHeader("Table 2 / Figure 3: workload scenario characteristics");
    struct PaperRow
    {
        double maxMin;
        double jobRatio;
        double coreRatio;
    };
    const std::map<workload::ScenarioKind, PaperRow> paper = {
        {workload::ScenarioKind::Static, {1.1, 4.2, 1.4}},
        {workload::ScenarioKind::LowVariability, {1.5, 3.6, 1.4}},
        {workload::ScenarioKind::HighVariability, {6.2, 4.1, 1.5}},
    };
    std::vector<std::vector<std::string>> rows;
    for (workload::ScenarioKind kind : workload::kAllScenarios) {
        workload::ScenarioConfig cfg;
        cfg.kind = kind;
        cfg.seed = opt.seed;
        cfg.loadScale = opt.loadScale;
        const workload::ArrivalTrace trace =
            workload::generateScenario(cfg);
        const workload::TraceStats s = trace.stats();
        const PaperRow& p = paper.at(kind);
        rows.push_back({toString(kind),
                        fmt(s.maxMinCoreRatio, 1) + " (" +
                            fmt(p.maxMin, 1) + ")",
                        fmt(s.batchLcJobRatio, 1) + " (" +
                            fmt(p.jobRatio, 1) + ")",
                        fmt(s.batchLcCoreRatio, 1) + " (" +
                            fmt(p.coreRatio, 1) + ")",
                        fmt(s.meanInterArrival, 2) + " (1.00)",
                        fmt(s.idealCompletion / 3600.0, 1) + " (2.0)",
                        std::to_string(s.jobCount),
                        fmt(s.minCores, 0) + "-" + fmt(s.maxCores, 0)});
    }
    printTable({"scenario", "max:min (paper)", "batch:LC jobs (paper)",
                "batch:LC cores (paper)", "inter-arrival s (paper)",
                "ideal hr (paper)", "jobs", "cores"},
               rows);

    std::printf("\nFigure 3 target curves (cores):\n");
    for (workload::ScenarioKind kind : workload::kAllScenarios) {
        std::printf("  %-16s", toString(kind));
        for (int m = 0; m <= 120; m += 10) {
            std::printf(" %5.0f",
                        workload::targetLoad(kind, sim::minutes(m)) *
                            opt.loadScale);
        }
        std::printf("\n");
    }
}

namespace detail {

double
staticSrCost(Runner& runner, const cloud::PricingModel& pricing)
{
    const core::RunResult& base =
        runner.run(workload::ScenarioKind::Static, core::StrategyKind::SR);
    return base.cost(pricing).total();
}

double
tailPerf(const core::RunResult& r)
{
    sim::SampleSet all;
    all.merge(r.batchPerfNorm);
    all.merge(r.lcPerfNorm);
    return all.empty() ? 0.0 : all.quantile(0.05);
}

void
perfPanel(Runner& runner, const std::vector<core::StrategyKind>& strategies)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        std::printf("\n-- %s scenario --\n", toString(scenario));
        std::vector<std::vector<std::string>> batch_rows;
        std::vector<std::vector<std::string>> lc_rows;
        for (core::StrategyKind s : strategies) {
            for (bool profiling : {true, false}) {
                const core::RunResult& r =
                    runner.run(scenario, s, profiling);
                const std::string label = r.strategy +
                    (profiling ? "/profiled" : "/default");
                batch_rows.push_back(
                    boxplotRow(label, r.batchTurnaroundMin.boxplot(), 1));
                lc_rows.push_back(
                    boxplotRow(label, r.lcLatencyUs.boxplot(), 0));
            }
        }
        std::printf("batch completion time (min):\n");
        printTable({"strategy", "p5", "p25", "mean", "p75", "p95"},
                   batch_rows);
        std::printf("latency-critical p99 (us):\n");
        printTable({"strategy", "p5", "p25", "mean", "p75", "p95"},
                   lc_rows);
    }
}

void
costPanel(Runner& runner, const std::vector<core::StrategyKind>& strategies)
{
    const cloud::AwsStylePricing pricing;
    const double base = detail::staticSrCost(runner, pricing);
    std::vector<std::vector<std::string>> rows;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind s : strategies) {
            const core::RunResult& r = runner.run(scenario, s);
            const cloud::CostBreakdown c = r.cost(pricing);
            rows.push_back({std::string(toString(scenario)), r.strategy,
                            fmt(c.reserved / base, 2),
                            fmt(c.onDemand / base, 2),
                            fmt(c.total() / base, 2)});
        }
    }
    printTable({"scenario", "strategy", "reserved", "on-demand",
                "total (norm to static SR)"},
               rows);
}

} // namespace detail

void
fig04BaselinePerf(Runner& runner)
{
    printHeader("Figure 4: SR / OdF / OdM performance, with and without "
                "profiling information");
    detail::perfPanel(runner, {core::StrategyKind::SR, core::StrategyKind::OdF,
                       core::StrategyKind::OdM});
    // Headline: profiling info is worth ~2.4x for SR on average.
    double with_p = 0.0;
    double without_p = 0.0;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        with_p += runner.run(scenario, core::StrategyKind::SR, true)
                      .meanPerfNorm();
        without_p += runner.run(scenario, core::StrategyKind::SR, false)
                         .meanPerfNorm();
    }
    printClaim("SR profiled-vs-default perf gain (avg)", "~2.4x",
               fmt(with_p / without_p, 2) + "x");
    double sr_perf = 0.0;
    double odm_perf = 0.0;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        sr_perf +=
            runner.run(scenario, core::StrategyKind::SR).meanPerfNorm();
        odm_perf +=
            runner.run(scenario, core::StrategyKind::OdM).meanPerfNorm();
    }
    printClaim("OdM perf degradation vs SR (avg)", "~2.2x worse",
               fmt(sr_perf / odm_perf, 2) + "x worse");
}

void
fig05BaselineCost(Runner& runner)
{
    printHeader("Figure 5: cost of fully reserved and on-demand systems "
                "(2-hour run, AWS-style pricing, amortized reservations)");
    detail::costPanel(runner, {core::StrategyKind::SR, core::StrategyKind::OdF,
                       core::StrategyKind::OdM});
    printClaim("on-demand more cost-efficient short-term", "~2.5x",
               "see OdF/OdM vs 1-year commitment of SR");
}

namespace {

/** Run the high-variability scenario under one mapping policy. */
core::RunResult
policyRun(Runner& runner, core::StrategyKind strategy,
          core::PolicyKind policy)
{
    core::EngineConfig cfg = runner.baseConfig();
    cfg.useProfiling = true;
    cfg.mappingPolicy = policy;
    // Label carries the policy so ad-hoc report entries stay tellable
    // apart (every sweep point shares scenario and strategy).
    std::string label = "high_variability/";
    label += toString(policy);
    return runner.runWith(workload::ScenarioKind::HighVariability,
                          strategy, cfg, label);
}

} // namespace

void
fig06PolicyPerf(Runner& runner)
{
    printHeader("Figure 6: mapping-policy sensitivity (high-variability "
                "scenario) - perf normalized to isolation, %");
    std::vector<std::vector<std::string>> rows;
    for (core::StrategyKind s :
         {core::StrategyKind::HF, core::StrategyKind::HM}) {
        for (core::PolicyKind p : core::kAllPolicies) {
            const core::RunResult r = policyRun(runner, s, p);
            rows.push_back(
                {toString(s), toString(p),
                 fmt(100.0 * r.perfReserved.mean(), 1),
                 fmt(100.0 * (r.perfReserved.empty()
                                  ? 0.0
                                  : r.perfReserved.quantile(0.05)), 1),
                 fmt(100.0 * r.perfOnDemand.mean(), 1),
                 fmt(100.0 * (r.perfOnDemand.empty()
                                  ? 0.0
                                  : r.perfOnDemand.quantile(0.05)), 1)});
        }
    }
    printTable({"strategy", "policy", "reserved mean%", "reserved p5%",
                "on-demand mean%", "on-demand p5%"},
               rows);
    printClaim("random mapping (P1) hurts both sides",
               "reserved queued, sensitive jobs degraded on-demand",
               "compare P1 vs P8 rows");
}

void
fig07PolicyUtilCost(Runner& runner)
{
    printHeader("Figure 7: reserved utilization and cost across mapping "
                "policies (high-variability scenario)");
    const cloud::AwsStylePricing pricing;
    const double base = detail::staticSrCost(runner, pricing);
    std::vector<std::vector<std::string>> rows;
    for (core::StrategyKind s :
         {core::StrategyKind::HF, core::StrategyKind::HM}) {
        for (core::PolicyKind p : core::kAllPolicies) {
            const core::RunResult r = policyRun(runner, s, p);
            rows.push_back({toString(s), toString(p),
                            fmt(100.0 * r.reservedUtilizationAvg, 1),
                            fmt(r.cost(pricing).total() / base, 2),
                            std::to_string(r.queuedJobs)});
        }
    }
    printTable({"strategy", "policy", "reserved util %",
                "cost (norm to static SR)", "queued jobs"},
               rows);
}

void
fig09DynamicPolicy(Runner& runner)
{
    printHeader("Figure 9a: adaptive soft utilization limit over time "
                "(high-variability scenario, HM)");
    const core::RunResult& r = runner.run(
        workload::ScenarioKind::HighVariability, core::StrategyKind::HM);
    printSeries("soft limit (%)", r.softLimitHistory, 0.0, r.makespan, 16,
                100.0);

    printHeader("Figure 9b: queueing-time estimator validation "
                "(estimated vs measured availability CDF)");
    // Drive the estimator with synthetic Poisson release processes of
    // known rates (types A, B, C of the paper) and compare its predicted
    // availability CDF against the measured distribution of waits.
    core::QueueEstimator estimator;
    const auto& catalog = cloud::InstanceTypeCatalog::defaultCatalog();
    struct Case
    {
        const char* label;
        const char* type;
        double meanGap; // seconds between releases
    };
    const Case cases[] = {
        {"A (4 vCPU)", "st4", 0.45},
        {"B (8 vCPU)", "st8", 0.90},
        {"C (16 vCPU)", "st16", 1.60},
    };
    sim::Rng rng(runner.options().seed);
    for (const Case& c : cases) {
        const auto& type = catalog.byName(c.type);
        sim::Rng stream = rng.child(c.label);
        sim::Time t = 0.0;
        std::vector<sim::Time> releases;
        while (t < 600.0) {
            t += stream.exponential(c.meanGap);
            releases.push_back(t);
            estimator.recordRelease(type, t);
        }
        // Measured: waits of jobs arriving uniformly at random.
        sim::SampleSet measured;
        for (int i = 0; i < 400; ++i) {
            const sim::Time arrive = stream.uniform(0.0, 590.0);
            for (sim::Time rel : releases) {
                if (rel >= arrive) {
                    measured.add(rel - arrive);
                    break;
                }
            }
        }
        std::printf("%s: release rate est %.2f/s\n", c.label,
                    estimator.releaseRate(type, 600.0));
        std::printf("  %-10s %-12s %-12s\n", "wait(s)", "P_est", "P_meas");
        for (double x : {0.25, 0.5, 1.0, 2.0, 3.5}) {
            std::printf("  %-10.2f %-12.3f %-12.3f\n", x,
                        estimator.probAvailableWithin(type, x, 600.0),
                        measured.cdf(x));
        }
    }
    printClaim("estimated vs measured queueing time", "minimal deviation",
               "compare P_est / P_meas columns");
}

} // namespace hcloud::exp
