#include "exp/report_json.hpp"

#include <cstdio>
#include <fstream>

#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace hcloud::exp {

namespace {

/** Five-number summary of a sample set (omitted when empty). */
void
sampleSetJson(obs::JsonWriter& w, std::string_view name,
              const sim::SampleSet& samples)
{
    if (samples.empty())
        return;
    const sim::BoxplotSummary b = samples.boxplot();
    w.key(name);
    w.beginObject();
    w.field("count", static_cast<std::uint64_t>(b.count));
    w.field("mean", b.mean);
    w.field("p5", b.p5);
    w.field("p25", b.p25);
    w.field("p75", b.p75);
    w.field("p95", b.p95);
    w.field("min", samples.min());
    w.field("max", samples.max());
    w.endObject();
}

/** Deterministic header line identifying one cell in a trace JSONL. */
std::string
runHeaderLine(const core::RunResult& result)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("run");
    w.beginObject();
    w.field("strategy", result.strategy);
    w.field("scenario", result.scenario);
    w.field("profiling", result.profiling);
    w.field("events", result.trace.recorded);
    w.field("dropped", result.trace.dropped);
    w.endObject();
    w.endObject();
    return w.take();
}

/** Deterministic header line identifying one cell in a timeline JSONL. */
std::string
timelineHeaderLine(const core::RunResult& result)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("run");
    w.beginObject();
    w.field("strategy", result.strategy);
    w.field("scenario", result.scenario);
    w.field("profiling", result.profiling);
    w.field("samples", result.timeline.recorded);
    w.field("dropped", result.timeline.dropped);
    w.endObject();
    w.endObject();
    return w.take();
}

/** Splice one sink part file into @p out; optionally delete it after. */
bool
splicePart(std::ostream& out, const std::string& partPath,
           bool removeParts)
{
    std::ifstream in(partPath, std::ios::binary);
    if (!in)
        return false;
    // Chunked copy (out << in.rdbuf() sets failbit on empty part files).
    char chunk[1u << 16];
    while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
        out.write(chunk, in.gcount());
    if (!out)
        return false;
    in.close();
    if (removeParts)
        std::remove(partPath.c_str());
    return true;
}

/**
 * Append one run's trace stream to @p out: spliced from its sink part
 * file when the run streamed to disk, serialized from memory otherwise.
 */
bool
appendRunTrace(std::ostream& out, const core::RunResult& result,
               bool removeParts)
{
    if (!result.trace.sinkOk)
        return false;
    if (result.trace.sinkPath.empty()) {
        obs::writeJsonl(out, result.trace);
        return static_cast<bool>(out);
    }
    return splicePart(out, result.trace.sinkPath, removeParts);
}

/** Timeline analogue of appendRunTrace, same splice contract. */
bool
appendRunTimeline(std::ostream& out, const core::RunResult& result,
                  bool removeParts)
{
    if (!result.timeline.sinkOk)
        return false;
    if (result.timeline.sinkPath.empty()) {
        obs::writeJsonl(out, result.timeline);
        return static_cast<bool>(out);
    }
    return splicePart(out, result.timeline.sinkPath, removeParts);
}

} // namespace

void
runResultJson(obs::JsonWriter& w, const core::RunResult& result)
{
    w.beginObject();
    w.field("strategy", result.strategy);
    w.field("scenario", result.scenario);
    w.field("profiling", result.profiling);
    w.field("makespan_sec", result.makespan);
    w.field("mean_perf_norm", result.meanPerfNorm());
    w.field("reserved_utilization_avg", result.reservedUtilizationAvg);

    w.key("counters");
    w.beginObject();
    w.field("jobs", static_cast<std::uint64_t>(result.jobCount));
    w.field("failed_jobs", static_cast<std::uint64_t>(result.failedJobs));
    w.field("acquisitions",
            static_cast<std::uint64_t>(result.acquisitions));
    w.field("immediate_releases",
            static_cast<std::uint64_t>(result.immediateReleases));
    w.field("reschedules", static_cast<std::uint64_t>(result.reschedules));
    w.field("spot_interruptions",
            static_cast<std::uint64_t>(result.spotInterruptions));
    w.field("queued_jobs", static_cast<std::uint64_t>(result.queuedJobs));
    w.endObject();

    sampleSetJson(w, "batch_turnaround_min", result.batchTurnaroundMin);
    sampleSetJson(w, "batch_perf_norm", result.batchPerfNorm);
    sampleSetJson(w, "lc_latency_us", result.lcLatencyUs);
    sampleSetJson(w, "lc_perf_norm", result.lcPerfNorm);
    sampleSetJson(w, "perf_reserved", result.perfReserved);
    sampleSetJson(w, "perf_on_demand", result.perfOnDemand);
    sampleSetJson(w, "spin_up_waits_sec", result.spinUpWaits);
    sampleSetJson(w, "queue_waits_sec", result.queueWaits);

    w.key("trace");
    w.beginObject();
    w.field("recorded", result.trace.recorded);
    w.field("dropped", result.trace.dropped);
    w.field("retained",
            static_cast<std::uint64_t>(result.trace.events.size()));
    w.endObject();

    w.key("timeline");
    w.beginObject();
    w.field("cadence_sec", result.timeline.cadence);
    w.field("recorded", result.timeline.recorded);
    w.field("dropped", result.timeline.dropped);
    w.field("retained",
            static_cast<std::uint64_t>(result.timeline.samples.size()));
    w.key("samples");
    w.beginArray();
    for (const obs::TimelineSample& s : result.timeline.samples) {
        w.beginObject();
        obs::timelineSampleJson(w, s);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("metrics");
    w.beginArray();
    for (const obs::MetricSample& m : result.metricsSnapshot) {
        w.beginObject();
        w.field("name", m.name);
        w.field("kind", obs::toString(m.kind));
        w.field("value", m.value);
        if (m.kind == obs::MetricSample::Kind::Histogram) {
            w.field("count", static_cast<std::uint64_t>(m.count));
            w.field("p50", m.p50);
            w.field("p95", m.p95);
            w.field("p99", m.p99);
            w.field("max", m.max);
        }
        w.endObject();
    }
    w.endArray();

    w.key("telemetry");
    w.beginObject();
    w.field("trace_gen_sec", result.telemetry.traceGenSec);
    w.field("setup_sec", result.telemetry.setupSec);
    w.field("sim_loop_sec", result.telemetry.simLoopSec);
    w.field("finalize_sec", result.telemetry.finalizeSec);
    w.field("events_processed", result.telemetry.eventsProcessed);
    w.field("events_per_sec", result.telemetry.eventsPerSec);
    w.field("threads",
            static_cast<std::uint64_t>(result.telemetry.threads));
    w.endObject();

    w.endObject();
}

bool
writeJsonReport(const std::string& path, const std::string& title,
                const Runner& runner,
                const std::vector<SweepResult>& sweeps)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    obs::JsonWriter w;
    w.beginObject();
    w.field("schemaVersion", kReportSchemaVersion);
    w.field("title", title);
    w.field("load_scale", runner.options().loadScale);
    w.field("seed", static_cast<std::uint64_t>(runner.options().seed));
    w.key("runs");
    w.beginArray();
    for (const auto& [key, result] : runner.results()) {
        (void)key;
        runResultJson(w, result);
    }
    for (const core::RunResult& result : runner.adhocResults())
        runResultJson(w, result);
    w.endArray();
    w.key("sweeps");
    w.beginArray();
    for (const SweepResult& sweep : sweeps)
        sweepJson(w, sweep);
    w.endArray();
    w.endObject();
    out << w.str() << '\n';
    return static_cast<bool>(out);
}

bool
writeTraceJsonl(const std::string& path, const Runner& runner,
                bool removeParts)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    bool ok = true;
    for (const auto& [key, result] : runner.results()) {
        (void)key;
        out << runHeaderLine(result) << '\n';
        ok = appendRunTrace(out, result, removeParts) && ok;
    }
    for (const core::RunResult& result : runner.adhocResults()) {
        out << runHeaderLine(result) << '\n';
        ok = appendRunTrace(out, result, removeParts) && ok;
    }
    return ok && static_cast<bool>(out);
}

bool
writeTimelineJsonl(const std::string& path, const Runner& runner,
                   bool removeParts)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    bool ok = true;
    for (const auto& [key, result] : runner.results()) {
        (void)key;
        out << timelineHeaderLine(result) << '\n';
        ok = appendRunTimeline(out, result, removeParts) && ok;
    }
    for (const core::RunResult& result : runner.adhocResults()) {
        out << timelineHeaderLine(result) << '\n';
        ok = appendRunTimeline(out, result, removeParts) && ok;
    }
    return ok && static_cast<bool>(out);
}

} // namespace hcloud::exp
