/**
 * @file
 * SweepScheduler: multi-seed figure sweeps with per-worker engine reuse,
 * a shared scenario-trace cache and streaming CI aggregation.
 *
 * A sweep expands a figure grid (cells: scenario x strategy x config) by
 * a seed list into cells x seeds independent runs, packs them through
 * runtime::ThreadPool with cost-aware chunking, and reduces each cell's
 * runs into mean / stddev / 95% confidence intervals the moment they
 * land — a full RunResult never outlives its own task, so a thousand-run
 * sweep holds kilobytes of aggregates, not gigabytes of results.
 *
 * Three mechanisms carry the performance win over driving the same grid
 * through Runner::runBatch with per-spec scenario overrides:
 *
 *  1. Engine reuse: each pool worker rents a core::EngineRun from a
 *     shared pool and re-arms it via EngineRun::reset() between runs, so
 *     the event-queue slab, callback storage, ring buffers and job-index
 *     hash buckets are paid for once per worker, not once per run.
 *  2. Shared trace cache: tasks key their scenario generation by
 *     workload::digest(ScenarioConfig) — which covers every
 *     generation-relevant field *including the seed* — so the five
 *     strategies of one (scenario, seed) column generate the trace once
 *     and share it. runBatch with scenarioOverride regenerates it per
 *     spec.
 *  3. Streaming Welford reduction: per-cell accumulators are folded in
 *     seed order behind a cursor, independent of completion order, which
 *     keeps the aggregates byte-identical at 1, 2 or N threads (the
 *     Welford recurrence is order-sensitive, so "fold in seed order" is
 *     the determinism contract, asserted in tests/test_exp_sweep.cpp).
 *
 * Seed derivation: seed i of a sweep is sim::Rng(baseSeed).child(i)'s
 * seed — deterministic in (baseSeed, i), independent of seed count, and
 * as decorrelated across i as the engine's own child streams.
 */

#ifndef HCLOUD_EXP_SWEEP_HPP
#define HCLOUD_EXP_SWEEP_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "workload/scenario.hpp"

namespace hcloud::obs {
class JsonWriter;
} // namespace hcloud::obs

namespace hcloud::exp {

/** One grid cell of a sweep: a strategy against a scenario/config. */
struct SweepCell
{
    workload::ScenarioKind scenario = workload::ScenarioKind::Static;
    core::StrategyKind strategy = core::StrategyKind::SR;
    /** Engine configuration; its seed is replaced per task. */
    core::EngineConfig config{};
    /** Generate this cell's trace from a custom scenario config instead
     *  of the plain per-scenario one (the fig16 sensitive-fraction
     *  sweep). Its seed and loadScale are replaced per task. */
    std::optional<workload::ScenarioConfig> scenarioOverride;
    /** Cell label in reports; empty = "<scenario>/<strategy>". */
    std::string label;
    /** Relative execution cost for chunk packing (1.0 = nominal). Cells
     *  known to simulate more events (e.g. HighVariability) can be
     *  weighted so no chunk concentrates the expensive runs. */
    double costWeight = 1.0;
};

/** Sweep-wide knobs. */
struct SweepOptions
{
    /** Title recorded in the result and used for gauge labels. */
    std::string title = "sweep";
    /** Seeds per cell (the replication count behind each CI). */
    std::size_t seeds = 5;
    /** Root of the derived seed list (deriveSeedList). */
    std::uint64_t baseSeed = 42;
    /** Scales every scenario's load curve. */
    double loadScale = 1.0;
    /**
     * Scenario length override applied to every cell (cells with an
     * explicit scenarioOverride keep their own duration). Unset = the
     * scenario default. Short sweeps are where per-run setup dominates,
     * which is the regime the scheduler's reuse machinery targets.
     */
    std::optional<sim::Duration> duration;
    /** Worker threads; 0 = runtime::defaultThreadCount(), 1 = serial. */
    std::size_t threads = 0;
};

/**
 * Streaming mean/variance accumulator (Welford). merge() combines two
 * accumulators exactly (Chan et al.), so chunked reductions can fold
 * sub-aggregates; add() order still matters for bit-identity, which is
 * why SweepScheduler folds in seed order.
 */
struct Welford
{
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void add(double x);
    void merge(const Welford& other);
    double variance() const { return n > 1 ? m2 / double(n - 1) : 0.0; }
    double stddev() const;
    /** Half-width of the normal-approximation 95% CI on the mean
     *  (1.96 * stddev / sqrt(n); 0 below two samples). */
    double ci95() const;
};

/** Per-cell reduced metrics over the sweep's seed list. */
struct SweepCellAggregate
{
    std::string label;
    workload::ScenarioKind scenario = workload::ScenarioKind::Static;
    core::StrategyKind strategy = core::StrategyKind::SR;

    /** Amortized run cost under AwsStylePricing ($). */
    Welford cost;
    /** Time-averaged reserved-pool utilization. */
    Welford utilization;
    /** p95 of per-job normalized performance (batch + LC merged). */
    Welford qualityP95;
    /** QoS violations: reschedules + failed jobs. */
    Welford qosViolations;
    /** Simulated makespan (virtual seconds). */
    Welford makespan;
    /** Simulator events processed, summed over the cell's runs. */
    std::uint64_t eventsProcessed = 0;
};

/** Wall-clock/engineering telemetry of one sweep execution. */
struct SweepTelemetry
{
    std::uint64_t runs = 0;
    std::uint64_t traceCacheHits = 0;
    std::uint64_t traceCacheMisses = 0;
    std::uint64_t engineResets = 0;
    std::uint64_t enginesCreated = 0;
    /** End-to-end wall-clock of SweepScheduler::run() (seconds). */
    double wallSec = 0.0;
    /** Sum of per-run engine-setup seconds (reset-or-construct + wiring
     *  + arrival scheduling; the reuse win shows up here). */
    double setupSecTotal = 0.0;
    /** Sum of per-run trace-generation seconds actually paid (cache
     *  misses only). */
    double traceGenSecTotal = 0.0;
    /** Simulator events processed, summed over all runs. */
    std::uint64_t eventsProcessed = 0;
    /** eventsProcessed / wallSec — the sweep-level throughput number
     *  BENCH_sweep.json compares against the runBatch baseline. */
    double eventsPerSec = 0.0;
    /** Effective worker count. */
    std::size_t threads = 1;
    /** High-water mark of buffered (not yet folded) per-run metric
     *  records across the whole sweep — the "never holds thousands of
     *  RunResults" bound, surfaced so tests can pin it. */
    std::size_t maxBufferedRuns = 0;
};

/** Everything a finished sweep produced. */
struct SweepResult
{
    std::string title;
    std::size_t seeds = 0;
    std::uint64_t baseSeed = 0;
    double loadScale = 1.0;
    std::vector<std::uint64_t> seedList;
    /** One aggregate per grid cell, in grid order. */
    std::vector<SweepCellAggregate> cells;
    SweepTelemetry telemetry;
};

/**
 * The sweep's seed list: seed i = sim::Rng(baseSeed).child(i).seed().
 * Deterministic, duplicate-free in practice, and independent of @p count
 * (a 10-seed list extends the 5-seed list).
 */
std::vector<std::uint64_t> deriveSeedList(std::uint64_t baseSeed,
                                          std::size_t count);

/**
 * Split task indices [0, weights.size()) into at most @p targetChunks
 * contiguous ranges of near-equal total weight (greedy prefix packing
 * against the ideal weight/chunk quota). Every index lands in exactly
 * one range; ranges are returned in index order.
 */
std::vector<std::pair<std::size_t, std::size_t>> costAwareChunks(
    const std::vector<double>& weights, std::size_t targetChunks);

/**
 * Run @p cells x the derived seed list and reduce per cell.
 *
 * Execution: tasks are ordered cell-major (cell * seeds + seedIndex),
 * chunked by costAwareChunks over per-task cost weights, and executed on
 * a pool of options.threads workers. Each task rents an engine (reset or
 * fresh), resolves its trace through the shared cache, runs, extracts a
 * small metrics record and discards the RunResult. Records fold into the
 * per-cell accumulators in strict seed order regardless of completion
 * order, so the returned aggregates are byte-identical at any thread
 * count (sweepCellsJson() is the canonical comparison form).
 */
SweepResult runSweep(const std::vector<SweepCell>& cells,
                     const SweepOptions& options);

/**
 * Canonical JSON of a sweep's deterministic portion (cells only, no
 * telemetry) — what the byte-identity tests and CI compare across
 * thread counts.
 */
std::string sweepCellsJson(const SweepResult& result);

/**
 * Serialize one sweep as a JSON object into an open writer: the
 * deterministic cell block of sweepCellsJson plus a `telemetry` section
 * (wall-clock, cache/reset counts — excluded from byte-identity). This
 * is the `sweeps[]` element shape of report schema v4.
 */
void sweepJson(obs::JsonWriter& w, const SweepResult& result);

/**
 * Print @p result as an aligned per-cell table — mean +/- 95% CI for
 * each reduced metric — followed by one telemetry summary line (seeds,
 * threads, cache hit rate, resets, events/sec).
 */
void printSweepTable(const SweepResult& result);

/** The Figure 12 grid: 3 scenarios x 5 strategies on @p baseConfig. */
std::vector<SweepCell> fig12SweepGrid(const core::EngineConfig& base);

/** The Figure 15 grid: retention multiples {0,10,50,100,250,500} x the
 *  HighVariability scenario under the HM strategy. */
std::vector<SweepCell> fig15SweepGrid(const core::EngineConfig& base);

/** The Figure 16 grid: sensitive-app fraction {0,0.2,...,1.0} x the
 *  HighVariability scenario under the HM strategy. */
std::vector<SweepCell> fig16SweepGrid(const core::EngineConfig& base);

} // namespace hcloud::exp

#endif // HCLOUD_EXP_SWEEP_HPP
