/**
 * @file
 * Figure/table drivers: one function per paper figure or table.
 *
 * Each driver runs the experiments behind a figure and prints the same
 * rows/series the paper reports, plus paper-vs-measured comparison lines
 * where the paper states a number. Bench binaries are thin wrappers over
 * these functions (one binary per figure).
 */

#ifndef HCLOUD_EXP_FIGURES_HPP
#define HCLOUD_EXP_FIGURES_HPP

#include "exp/runner.hpp"

#include <string>
#include <vector>

namespace hcloud::exp {

// Section 1 motivation.
void fig01VariabilityBatch(const ExperimentOptions& opt);
void fig02VariabilityMemcached(const ExperimentOptions& opt);

/**
 * Column headers for the fig02 boxplot table. Each cell aggregates one
 * per-instance statistic — the p95-over-time of that instance's modeled
 * p99 latency — across the 40 sampled instances, so the quantile in the
 * header names the ACROSS-INSTANCE quantile of per-instance p99 tails
 * (e.g. "p95(p99us)"), not a p95 of raw latencies. Exposed so the
 * header/semantics stay pinned by a regression test.
 */
std::vector<std::string> fig02BoxplotHeader();

// Workload characterization.
void table1StrategyMatrix();
void table2Scenarios(const ExperimentOptions& opt);

// Baseline provisioning strategies (Section 3).
void fig04BaselinePerf(Runner& runner);
void fig05BaselineCost(Runner& runner);

// Mapping-policy study (Section 4.2).
void fig06PolicyPerf(Runner& runner);
void fig07PolicyUtilCost(Runner& runner);
void fig09DynamicPolicy(Runner& runner);

// Hybrid strategies (Section 4.3).
void fig10HybridPerf(Runner& runner);
void fig11HybridCost(Runner& runner);

// Sensitivity analyses (Section 5.1).
void fig12PriceRatio(Runner& runner);
void fig13Duration(Runner& runner);
void fig14SpinUpAndExternalLoad(Runner& runner);
void fig15Retention(Runner& runner);
void fig16SensitiveApps(Runner& runner);

// Pricing models and resource efficiency (Sections 5.3-5.4).
void fig17PricingModels(Runner& runner);
void fig18Allocation(Runner& runner);
void fig19And20Utilization(Runner& runner);
void fig21Breakdown(Runner& runner);

} // namespace hcloud::exp

#endif // HCLOUD_EXP_FIGURES_HPP
