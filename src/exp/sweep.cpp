#include "exp/sweep.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include <cstdio>

#include "cloud/pricing.hpp"
#include "core/engine_run.hpp"
#include "exp/report.hpp"
#include "core/strategy.hpp"
#include "obs/json.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/process_metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace hcloud::exp {

void
Welford::add(double x)
{
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
}

void
Welford::merge(const Welford& other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean - mean;
    const std::uint64_t total = n + other.n;
    mean += delta * static_cast<double>(other.n) /
        static_cast<double>(total);
    m2 += other.m2 + delta * delta * static_cast<double>(n) *
        static_cast<double>(other.n) / static_cast<double>(total);
    n = total;
}

double
Welford::stddev() const
{
    return std::sqrt(variance());
}

double
Welford::ci95() const
{
    if (n < 2)
        return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n));
}

std::vector<std::uint64_t>
deriveSeedList(std::uint64_t baseSeed, std::size_t count)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(count);
    const sim::Rng root(baseSeed);
    for (std::size_t i = 0; i < count; ++i)
        seeds.push_back(root.child(static_cast<std::uint64_t>(i)).seed());
    return seeds;
}

std::vector<std::pair<std::size_t, std::size_t>>
costAwareChunks(const std::vector<double>& weights,
                std::size_t targetChunks)
{
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    const std::size_t n = weights.size();
    if (n == 0)
        return chunks;
    if (targetChunks == 0)
        targetChunks = 1;
    double total = 0.0;
    for (double w : weights)
        total += w > 0.0 ? w : 0.0;
    if (total <= 0.0)
        total = static_cast<double>(n);
    const double quota = total / static_cast<double>(targetChunks);
    std::size_t lo = 0;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += weights[i] > 0.0 ? weights[i] : 1.0;
        // Greedy prefix packing: close the chunk once it reaches its
        // quota, keeping the last chunk open so every index is covered
        // with at most targetChunks non-empty ranges.
        if (acc >= quota && chunks.size() + 1 < targetChunks) {
            chunks.emplace_back(lo, i + 1);
            lo = i + 1;
            acc = 0.0;
        }
    }
    if (lo < n)
        chunks.emplace_back(lo, n);
    return chunks;
}

namespace {

double
secondsSince(obs::PhaseProfiler::Clock::time_point start)
{
    return std::chrono::duration<double>(
               obs::PhaseProfiler::Clock::now() - start)
        .count();
}

/** The scenario-generation config of one (cell, seed) task. */
workload::ScenarioConfig
taskScenarioConfig(const SweepCell& cell, const SweepOptions& options,
                   std::uint64_t seed)
{
    workload::ScenarioConfig cfg =
        cell.scenarioOverride.value_or(workload::ScenarioConfig{});
    if (!cell.scenarioOverride) {
        cfg.kind = cell.scenario;
        if (options.duration)
            cfg.duration = *options.duration;
    }
    cfg.loadScale = options.loadScale;
    cfg.seed = seed;
    return cfg;
}

/** Everything a task keeps from its RunResult — the RunResult itself
 *  (outcomes, series, trace buffers) dies with the task. */
struct RunRecord
{
    double cost = 0.0;
    double utilization = 0.0;
    double qualityP95 = 0.0;
    double qosViolations = 0.0;
    double makespan = 0.0;
    double setupSec = 0.0;
    std::uint64_t events = 0;
};

/** Generated-once-per-digest trace store shared by all tasks. */
class TraceCache
{
  public:
    /** The trace for @p cfg; generates it under the entry lock on first
     *  request. @p hit reports whether generation was skipped;
     *  @p genSec the generation seconds paid (0 on a hit). */
    const workload::ArrivalTrace& get(const workload::ScenarioConfig& cfg,
                                      bool* hit, double* genSec)
    {
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(mapMutex_);
            std::shared_ptr<Entry>& slot = entries_[workload::digest(cfg)];
            if (!slot)
                slot = std::make_shared<Entry>();
            entry = slot;
        }
        std::lock_guard<std::mutex> lock(entry->mutex);
        if (!entry->ready) {
            const auto start = obs::PhaseProfiler::Clock::now();
            entry->trace = workload::generateScenario(cfg);
            entry->genSec = secondsSince(start);
            entry->ready = true;
            *hit = false;
            *genSec = entry->genSec;
        } else {
            *hit = true;
            *genSec = 0.0;
        }
        return entry->trace;
    }

  private:
    struct Entry
    {
        std::mutex mutex;
        bool ready = false;
        workload::ArrivalTrace trace;
        double genSec = 0.0;
    };

    std::mutex mapMutex_;
    std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
};

/** Idle-engine pool: each worker rents, resets, runs and returns. */
class EngineRental
{
  public:
    std::unique_ptr<core::EngineRun> acquire()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (idle_.empty())
            return nullptr;
        std::unique_ptr<core::EngineRun> engine =
            std::move(idle_.back());
        idle_.pop_back();
        return engine;
    }

    void release(std::unique_ptr<core::EngineRun> engine)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        idle_.push_back(std::move(engine));
    }

  private:
    std::mutex mutex_;
    std::vector<std::unique_ptr<core::EngineRun>> idle_;
};

/** Reduce one RunResult to the record the aggregator keeps. */
RunRecord
reduceRun(const core::RunResult& r)
{
    RunRecord rec;
    static const cloud::AwsStylePricing pricing;
    rec.cost = r.cost(pricing).total();
    rec.utilization = r.reservedUtilizationAvg;
    sim::SampleSet perf = r.batchPerfNorm;
    perf.merge(r.lcPerfNorm);
    rec.qualityP95 = perf.quantile(0.95);
    rec.qosViolations =
        static_cast<double>(r.reschedules + r.failedJobs);
    rec.makespan = r.makespan;
    rec.setupSec = r.telemetry.setupSec;
    rec.events = r.telemetry.eventsProcessed;
    return rec;
}

/**
 * Order-insensitive fold: records arrive in any completion order, but
 * each cell's Welford accumulators only advance through a seed-index
 * cursor, so the reduction replays in seed order no matter which worker
 * finished first. Out-of-order records wait in a small per-cell buffer
 * of RunRecords (bounded by the in-flight window, tracked as the
 * maxBufferedRuns high-water mark).
 */
class CellAggregator
{
  public:
    explicit CellAggregator(std::size_t cells) { folds_.resize(cells); }

    void submit(std::size_t cell, std::size_t seedIndex,
                const RunRecord& rec, SweepCellAggregate* aggs)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Fold& fold = folds_[cell];
        fold.pending.emplace(seedIndex, rec);
        ++buffered_;
        if (buffered_ > maxBuffered_)
            maxBuffered_ = buffered_;
        SweepCellAggregate& agg = aggs[cell];
        for (auto it = fold.pending.find(fold.cursor);
             it != fold.pending.end();
             it = fold.pending.find(fold.cursor)) {
            const RunRecord& r = it->second;
            agg.cost.add(r.cost);
            agg.utilization.add(r.utilization);
            agg.qualityP95.add(r.qualityP95);
            agg.qosViolations.add(r.qosViolations);
            agg.makespan.add(r.makespan);
            agg.eventsProcessed += r.events;
            fold.pending.erase(it);
            --buffered_;
            ++fold.cursor;
        }
    }

    std::size_t maxBuffered() const { return maxBuffered_; }

  private:
    struct Fold
    {
        std::map<std::size_t, RunRecord> pending;
        std::size_t cursor = 0;
    };

    std::mutex mutex_;
    std::vector<Fold> folds_;
    std::size_t buffered_ = 0;
    std::size_t maxBuffered_ = 0;
};

} // namespace

SweepResult
runSweep(const std::vector<SweepCell>& cells, const SweepOptions& options)
{
    const auto sweepStart = obs::PhaseProfiler::Clock::now();

    SweepResult result;
    result.title = options.title;
    result.seeds = options.seeds > 0 ? options.seeds : 1;
    result.baseSeed = options.baseSeed;
    result.loadScale = options.loadScale;
    result.seedList = deriveSeedList(options.baseSeed, result.seeds);

    result.cells.resize(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        SweepCellAggregate& agg = result.cells[c];
        agg.scenario = cells[c].scenario;
        agg.strategy = cells[c].strategy;
        agg.label = cells[c].label.empty()
            ? std::string(workload::toString(cells[c].scenario)) + "/" +
                core::toString(cells[c].strategy)
            : cells[c].label;
    }

    runtime::ThreadPool pool(options.threads);
    const std::size_t threads = pool.serial() ? 1 : pool.size();

    // Task t = cell-major (cell * seeds + seedIndex); one weight per
    // task so cost-aware chunking can spread expensive cells.
    const std::size_t seeds = result.seeds;
    const std::size_t taskCount = cells.size() * seeds;
    std::vector<double> weights(taskCount, 1.0);
    for (std::size_t t = 0; t < taskCount; ++t) {
        const double w = cells[t / seeds].costWeight;
        weights[t] = w > 0.0 ? w : 1.0;
    }
    const std::vector<std::pair<std::size_t, std::size_t>> chunks =
        costAwareChunks(weights, threads * 4);

    // Process-wide observability: live progress gauge (labeled by sweep
    // title, retired at the end) + cumulative counters.
    obs::ProcessMetrics& pm = obs::ProcessMetrics::instance();
    const obs::MetricLabels sweepLabels = {{"sweep", options.title}};
    obs::ProcessGauge& remaining =
        pm.gauge("hcloud_sweep_tasks_remaining",
                 "Sweep tasks not yet completed", sweepLabels);
    remaining.set(static_cast<double>(taskCount));
    obs::ProcessCounter& runsTotal = pm.counter(
        "hcloud_sweep_runs_total", "Engine runs completed by sweeps");
    obs::ProcessCounter& cacheHits =
        pm.counter("hcloud_sweep_trace_cache_hits_total",
                   "Sweep tasks that reused a cached scenario trace");
    obs::ProcessCounter& cacheMisses =
        pm.counter("hcloud_sweep_trace_cache_misses_total",
                   "Sweep tasks that generated a scenario trace");
    obs::ProcessCounter& resets =
        pm.counter("hcloud_sweep_engine_resets_total",
                   "Sweep runs served by resetting a pooled engine");
    obs::ProcessCounter& created =
        pm.counter("hcloud_sweep_engine_created_total",
                   "Sweep runs that constructed a fresh engine");

    TraceCache traceCache;
    EngineRental rental;
    CellAggregator aggregator(cells.size());
    static const cloud::ProviderProfile profile =
        cloud::ProviderProfile::gce();

    std::mutex telemetryMutex;
    SweepTelemetry& tel = result.telemetry;
    tel.threads = threads;

    auto runTask = [&](std::size_t t) {
        const std::size_t cellIndex = t / seeds;
        const std::size_t seedIndex = t % seeds;
        const SweepCell& cell = cells[cellIndex];
        const std::uint64_t seed = result.seedList[seedIndex];

        bool hit = false;
        double genSec = 0.0;
        const workload::ArrivalTrace& trace = traceCache.get(
            taskScenarioConfig(cell, options, seed), &hit, &genSec);
        (hit ? cacheHits : cacheMisses).inc();

        core::EngineConfig cfg = cell.config;
        cfg.seed = seed;
        const auto factory = [&cell](core::EngineContext& ctx) {
            return core::makeStrategy(cell.strategy, ctx);
        };
        std::unique_ptr<core::EngineRun> engine = rental.acquire();
        const bool reused = engine != nullptr;
        if (reused)
            engine->reset(cfg, profile, factory);
        else
            engine = std::make_unique<core::EngineRun>(cfg, profile,
                                                       factory);
        (reused ? resets : created).inc();

        const core::RunResult run =
            engine->runBatch(trace, result.cells[cellIndex].label);
        rental.release(std::move(engine));

        const RunRecord rec = reduceRun(run);
        aggregator.submit(cellIndex, seedIndex, rec,
                          result.cells.data());
        runsTotal.inc();
        remaining.add(-1.0);
        {
            std::lock_guard<std::mutex> lock(telemetryMutex);
            ++tel.runs;
            if (hit)
                ++tel.traceCacheHits;
            else
                ++tel.traceCacheMisses;
            if (reused)
                ++tel.engineResets;
            else
                ++tel.enginesCreated;
            tel.setupSecTotal += rec.setupSec;
            tel.traceGenSecTotal += genSec;
            tel.eventsProcessed += rec.events;
        }
    };

    runtime::parallelFor(
        pool, 0, chunks.size(),
        [&](std::size_t c) {
            for (std::size_t t = chunks[c].first; t < chunks[c].second;
                 ++t)
                runTask(t);
        },
        /*chunk=*/1);

    tel.maxBufferedRuns = aggregator.maxBuffered();
    tel.wallSec = secondsSince(sweepStart);
    tel.eventsPerSec = tel.wallSec > 0.0
        ? static_cast<double>(tel.eventsProcessed) / tel.wallSec
        : 0.0;

    // Retire the per-sweep gauge series so long-lived processes (the
    // daemon, test binaries) don't accumulate one series per title.
    pm.remove("hcloud_sweep_tasks_remaining", sweepLabels);
    return result;
}

namespace {

void
welfordJson(obs::JsonWriter& w, const char* name, const Welford& acc)
{
    w.key(name);
    w.beginObject();
    w.field("mean", acc.mean);
    w.field("stddev", acc.stddev());
    w.field("ci95", acc.ci95());
    w.field("count", acc.n);
    w.endObject();
}

/** The deterministic sweep fields (everything but telemetry). */
void
sweepCellsBody(obs::JsonWriter& w, const SweepResult& result)
{
    w.field("title", result.title);
    w.field("seeds", static_cast<std::uint64_t>(result.seeds));
    w.field("base_seed", result.baseSeed);
    w.field("load_scale", result.loadScale);
    w.key("seed_list");
    w.beginArray();
    for (std::uint64_t s : result.seedList)
        w.value(s);
    w.endArray();
    w.key("cells");
    w.beginArray();
    for (const SweepCellAggregate& cell : result.cells) {
        w.beginObject();
        w.field("label", cell.label);
        w.field("scenario", workload::toString(cell.scenario));
        w.field("strategy", core::toString(cell.strategy));
        welfordJson(w, "cost", cell.cost);
        welfordJson(w, "utilization", cell.utilization);
        welfordJson(w, "quality_p95", cell.qualityP95);
        welfordJson(w, "qos_violations", cell.qosViolations);
        welfordJson(w, "makespan", cell.makespan);
        w.field("events_processed", cell.eventsProcessed);
        w.endObject();
    }
    w.endArray();
}

} // namespace

std::string
sweepCellsJson(const SweepResult& result)
{
    obs::JsonWriter w;
    w.beginObject();
    sweepCellsBody(w, result);
    w.endObject();
    return w.take();
}

void
sweepJson(obs::JsonWriter& w, const SweepResult& result)
{
    const SweepTelemetry& tel = result.telemetry;
    w.beginObject();
    sweepCellsBody(w, result);
    w.key("telemetry");
    w.beginObject();
    w.field("runs", tel.runs);
    w.field("trace_cache_hits", tel.traceCacheHits);
    w.field("trace_cache_misses", tel.traceCacheMisses);
    w.field("engine_resets", tel.engineResets);
    w.field("engines_created", tel.enginesCreated);
    w.field("wall_sec", tel.wallSec);
    w.field("setup_sec_total", tel.setupSecTotal);
    w.field("trace_gen_sec_total", tel.traceGenSecTotal);
    w.field("events_processed", tel.eventsProcessed);
    w.field("events_per_sec", tel.eventsPerSec);
    w.field("threads", static_cast<std::uint64_t>(tel.threads));
    w.field("max_buffered_runs",
            static_cast<std::uint64_t>(tel.maxBufferedRuns));
    w.endObject();
    w.endObject();
}

void
printSweepTable(const SweepResult& result)
{
    printHeader(result.title + " sweep: " +
                std::to_string(result.cells.size()) + " cells x " +
                std::to_string(result.seeds) + " seeds (mean +/- 95% CI)");
    const auto pm = [](const Welford& w, int precision) {
        return fmt(w.mean, precision) + " +/- " + fmt(w.ci95(), precision);
    };
    std::vector<std::vector<std::string>> rows;
    for (const SweepCellAggregate& cell : result.cells)
        rows.push_back({cell.label, pm(cell.cost, 2),
                        pm(cell.utilization, 3), pm(cell.qualityP95, 3),
                        pm(cell.qosViolations, 1), pm(cell.makespan, 0)});
    printTable({"cell", "cost_$", "util", "quality_p95", "qos_viol",
                "makespan_s"},
               rows);
    const SweepTelemetry& tel = result.telemetry;
    const std::uint64_t lookups = tel.traceCacheHits + tel.traceCacheMisses;
    std::printf("%llu runs in %ss on %zu thread(s): %s Mev/s, "
                "trace cache %llu/%llu hits, %llu resets / %llu engines\n",
                static_cast<unsigned long long>(tel.runs),
                fmt(tel.wallSec, 2).c_str(), tel.threads,
                fmt(tel.eventsPerSec / 1e6, 2).c_str(),
                static_cast<unsigned long long>(tel.traceCacheHits),
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(tel.engineResets),
                static_cast<unsigned long long>(tel.enginesCreated));
}

std::vector<SweepCell>
fig12SweepGrid(const core::EngineConfig& base)
{
    std::vector<SweepCell> cells;
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind strategy : core::kAllStrategies) {
            SweepCell cell;
            cell.scenario = scenario;
            cell.strategy = strategy;
            cell.config = base;
            // HighVariability simulates the most arrivals per virtual
            // hour; weight it so chunks don't stack its runs together.
            cell.costWeight =
                scenario == workload::ScenarioKind::HighVariability
                ? 1.5
                : 1.0;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

std::vector<SweepCell>
fig15SweepGrid(const core::EngineConfig& base)
{
    std::vector<SweepCell> cells;
    for (double retention : {0.0, 10.0, 50.0, 100.0, 250.0, 500.0}) {
        SweepCell cell;
        cell.scenario = workload::ScenarioKind::HighVariability;
        cell.strategy = core::StrategyKind::HM;
        cell.config = base;
        cell.config.retentionMultiple = retention;
        cell.label = "fig15/retention=" +
            std::to_string(static_cast<int>(retention));
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::vector<SweepCell>
fig16SweepGrid(const core::EngineConfig& base)
{
    std::vector<SweepCell> cells;
    for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        SweepCell cell;
        cell.scenario = workload::ScenarioKind::HighVariability;
        cell.strategy = core::StrategyKind::HM;
        cell.config = base;
        workload::ScenarioConfig scenario;
        scenario.kind = workload::ScenarioKind::HighVariability;
        scenario.sensitiveFraction = fraction;
        cell.scenarioOverride = scenario;
        cell.label = "fig16/sensitive=" +
            std::to_string(static_cast<int>(fraction * 100.0)) + "%";
        cells.push_back(std::move(cell));
    }
    return cells;
}

} // namespace hcloud::exp
