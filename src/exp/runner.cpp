#include "exp/runner.hpp"

#include <chrono>

#include "obs/phase_profiler.hpp"
#include "obs/process_metrics.hpp"

namespace hcloud::exp {

namespace {

/** Seconds elapsed since @p start on the profiler clock. */
double
secondsSince(obs::PhaseProfiler::Clock::time_point start)
{
    return std::chrono::duration<double>(obs::PhaseProfiler::Clock::now() -
                                         start)
        .count();
}

} // namespace

void
Runner::publishRunCompleted(const core::RunResult& result)
{
    obs::ProcessMetrics& pm = obs::ProcessMetrics::instance();
    pm.counter("hcloud_run_completed_total",
               "Engine runs completed by experiment runners")
        .inc();
    pm.counter("hcloud_run_sim_events_total",
               "Simulator events processed across all runs")
        .inc(static_cast<double>(result.telemetry.eventsProcessed));
    pm.gauge("hcloud_run_last_events_per_sec",
             "Sim-loop throughput of the most recently finished run")
        .set(result.telemetry.eventsPerSec);

    // Per-phase wall-clock from the phase profiler, as one labeled
    // counter family (seconds are floats; the counter CAS-adds them).
    static constexpr const char* kPhaseHelp =
        "Wall-clock seconds per run phase, accumulated across runs";
    pm.counter("hcloud_phase_seconds_total", kPhaseHelp,
               {{"phase", "setup"}})
        .inc(result.telemetry.setupSec);
    pm.counter("hcloud_phase_seconds_total", kPhaseHelp,
               {{"phase", "sim_loop"}})
        .inc(result.telemetry.simLoopSec);
    pm.counter("hcloud_phase_seconds_total", kPhaseHelp,
               {{"phase", "finalize"}})
        .inc(result.telemetry.finalizeSec);

    // The run's registry snapshot folds into three labeled families —
    // names become label values, so cardinality stays one series per
    // per-run metric instead of one family each.
    for (const obs::MetricSample& m : result.metricsSnapshot) {
        switch (m.kind) {
          case obs::MetricSample::Kind::Counter:
            pm.counter("hcloud_run_counter_total",
                       "Per-run registry counters summed across runs",
                       {{"metric", m.name}})
                .inc(m.value);
            break;
          case obs::MetricSample::Kind::Gauge:
            pm.gauge("hcloud_run_gauge",
                     "Per-run registry gauges (last finished run wins)",
                     {{"metric", m.name}})
                .set(m.value);
            break;
          case obs::MetricSample::Kind::Histogram:
            pm.counter(
                  "hcloud_run_histogram_observations_total",
                  "Per-run registry histogram observations across runs",
                  {{"metric", m.name}})
                .inc(static_cast<double>(m.count));
            pm.gauge("hcloud_run_histogram_mean",
                     "Per-run registry histogram mean of the last "
                     "finished run",
                     {{"metric", m.name}})
                .set(m.value);
            break;
        }
    }
}

void
Runner::publishCellCompleted()
{
    obs::ProcessMetrics::instance()
        .counter("hcloud_cell_completed_total",
                 "Memoized run-matrix cells filled")
        .inc();
}

Runner::Runner(ExperimentOptions options, core::EngineConfig baseConfig)
    : options_(options), baseConfig_(baseConfig)
{
    baseConfig_.seed = options.seed;
}

workload::ScenarioConfig
Runner::scenarioConfig(workload::ScenarioKind scenario) const
{
    workload::ScenarioConfig cfg;
    cfg.kind = scenario;
    cfg.seed = options_.seed;
    cfg.loadScale = options_.loadScale;
    return cfg;
}

double
Runner::traceGenSeconds(workload::ScenarioKind scenario) const
{
    auto it = traceGenSec_.find(scenario);
    return it == traceGenSec_.end() ? 0.0 : it->second;
}

const workload::ArrivalTrace&
Runner::trace(workload::ScenarioKind scenario)
{
    auto it = traces_.find(scenario);
    if (it == traces_.end()) {
        const auto start = obs::PhaseProfiler::Clock::now();
        workload::ArrivalTrace generated =
            workload::generateScenario(scenarioConfig(scenario));
        traceGenSec_[scenario] = secondsSince(start);
        it = traces_.emplace(scenario, std::move(generated)).first;
    }
    return it->second;
}

std::string
Runner::cellSinkTag(workload::ScenarioKind scenario,
                    core::StrategyKind strategy, bool profiling)
{
    std::string tag = workload::toString(scenario);
    tag += '-';
    tag += core::toString(strategy);
    if (!profiling)
        tag += "-unprofiled";
    return tag;
}

void
Runner::applySinkTag(core::EngineConfig& cfg, const std::string& tag)
{
    // Trace and timeline stems must differ (the CLI derives them from
    // distinct output paths), so the per-run part files never collide.
    if (!cfg.trace.sinkStem.empty())
        cfg.trace.sinkPath = cfg.trace.sinkStem + "." + tag + ".part";
    if (!cfg.timeline.sinkStem.empty())
        cfg.timeline.sinkPath = cfg.timeline.sinkStem + "." + tag + ".part";
}

const core::RunResult&
Runner::run(workload::ScenarioKind scenario, core::StrategyKind strategy,
            bool profiling)
{
    const auto key = std::make_tuple(scenario, strategy, profiling);
    auto it = results_.find(key);
    if (it == results_.end()) {
        core::EngineConfig cfg = baseConfig_;
        cfg.useProfiling = profiling;
        applySinkTag(cfg, cellSinkTag(scenario, strategy, profiling));
        core::Engine engine(cfg);
        core::RunResult result = engine.run(trace(scenario), strategy,
                                            workload::toString(scenario));
        result.telemetry.traceGenSec = traceGenSeconds(scenario);
        result.telemetry.threads = 1;
        publishRunCompleted(result);
        publishCellCompleted();
        it = results_.emplace(key, std::move(result)).first;
    }
    return it->second;
}

core::RunResult
Runner::runWith(workload::ScenarioKind scenario,
                core::StrategyKind strategy,
                const core::EngineConfig& config,
                const std::string& label)
{
    // Root-seed contract: runWith() used to run with whatever seed the
    // caller left in the config, silently diverging from the memoized
    // run() path whenever a call site forgot `cfg.seed = options().seed`.
    core::EngineConfig cfg = config;
    cfg.seed = options_.seed;
    applySinkTag(cfg, "a" + std::to_string(nextSinkSeq()));
    core::Engine engine(cfg);
    core::RunResult result = engine.run(
        trace(scenario), strategy,
        label.empty() ? std::string(workload::toString(scenario)) : label);
    result.telemetry.traceGenSec = traceGenSeconds(scenario);
    result.telemetry.threads = 1;
    publishRunCompleted(result);
    if (recordAdhoc_)
        adhoc_.push_back(result);
    return result;
}

std::vector<core::RunResult>
Runner::runBatch(const std::vector<RunSpec>& specs)
{
    std::vector<core::RunResult> results;
    results.reserve(specs.size());
    const std::string batch = "b" + std::to_string(nextSinkSeq()) + "x";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const RunSpec& spec = specs[i];
        const workload::ArrivalTrace* shared =
            spec.scenarioOverride ? nullptr : &trace(spec.scenario);
        core::RunResult result =
            executeSpec(spec, shared, batch + std::to_string(i));
        if (!spec.scenarioOverride)
            result.telemetry.traceGenSec = traceGenSeconds(spec.scenario);
        if (recordAdhoc_)
            adhoc_.push_back(result);
        results.push_back(std::move(result));
    }
    return results;
}

void
Runner::prewarm(bool includeUnprofiled)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind strategy : core::kAllStrategies) {
            run(scenario, strategy, true);
            if (includeUnprofiled)
                run(scenario, strategy, false);
        }
    }
}

core::RunResult
Runner::executeSpec(const RunSpec& spec,
                    const workload::ArrivalTrace* sharedTrace,
                    const std::string& sinkTag) const
{
    core::EngineConfig cfg = spec.config;
    cfg.seed = spec.seedOverride.value_or(options_.seed);
    applySinkTag(cfg, sinkTag);
    core::Engine engine(cfg);
    const std::string label = spec.label.empty()
        ? std::string(workload::toString(spec.scenario))
        : spec.label;
    if (spec.scenarioOverride) {
        const auto start = obs::PhaseProfiler::Clock::now();
        const workload::ArrivalTrace local =
            workload::generateScenario(*spec.scenarioOverride);
        const double gen_sec = secondsSince(start);
        core::RunResult result = engine.run(local, spec.strategy, label);
        result.telemetry.traceGenSec = gen_sec;
        result.telemetry.threads = 1;
        publishRunCompleted(result);
        return result;
    }
    core::RunResult result = engine.run(*sharedTrace, spec.strategy, label);
    result.telemetry.threads = 1;
    publishRunCompleted(result);
    return result;
}

} // namespace hcloud::exp
