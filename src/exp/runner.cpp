#include "exp/runner.hpp"

namespace hcloud::exp {

Runner::Runner(ExperimentOptions options, core::EngineConfig baseConfig)
    : options_(options), baseConfig_(baseConfig)
{
    baseConfig_.seed = options.seed;
}

const workload::ArrivalTrace&
Runner::trace(workload::ScenarioKind scenario)
{
    auto it = traces_.find(scenario);
    if (it == traces_.end()) {
        workload::ScenarioConfig cfg;
        cfg.kind = scenario;
        cfg.seed = options_.seed;
        cfg.loadScale = options_.loadScale;
        it = traces_.emplace(scenario, workload::generateScenario(cfg))
                 .first;
    }
    return it->second;
}

const core::RunResult&
Runner::run(workload::ScenarioKind scenario, core::StrategyKind strategy,
            bool profiling)
{
    const auto key = std::make_tuple(scenario, strategy, profiling);
    auto it = results_.find(key);
    if (it == results_.end()) {
        core::EngineConfig cfg = baseConfig_;
        cfg.useProfiling = profiling;
        core::Engine engine(cfg);
        it = results_
                 .emplace(key, engine.run(trace(scenario), strategy,
                                          workload::toString(scenario)))
                 .first;
    }
    return it->second;
}

core::RunResult
Runner::runWith(workload::ScenarioKind scenario,
                core::StrategyKind strategy,
                const core::EngineConfig& config)
{
    core::Engine engine(config);
    return engine.run(trace(scenario), strategy,
                      workload::toString(scenario));
}

} // namespace hcloud::exp
