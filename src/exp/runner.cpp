#include "exp/runner.hpp"

namespace hcloud::exp {

Runner::Runner(ExperimentOptions options, core::EngineConfig baseConfig)
    : options_(options), baseConfig_(baseConfig)
{
    baseConfig_.seed = options.seed;
}

workload::ScenarioConfig
Runner::scenarioConfig(workload::ScenarioKind scenario) const
{
    workload::ScenarioConfig cfg;
    cfg.kind = scenario;
    cfg.seed = options_.seed;
    cfg.loadScale = options_.loadScale;
    return cfg;
}

const workload::ArrivalTrace&
Runner::trace(workload::ScenarioKind scenario)
{
    auto it = traces_.find(scenario);
    if (it == traces_.end()) {
        it = traces_
                 .emplace(scenario,
                          workload::generateScenario(
                              scenarioConfig(scenario)))
                 .first;
    }
    return it->second;
}

const core::RunResult&
Runner::run(workload::ScenarioKind scenario, core::StrategyKind strategy,
            bool profiling)
{
    const auto key = std::make_tuple(scenario, strategy, profiling);
    auto it = results_.find(key);
    if (it == results_.end()) {
        core::EngineConfig cfg = baseConfig_;
        cfg.useProfiling = profiling;
        core::Engine engine(cfg);
        it = results_
                 .emplace(key, engine.run(trace(scenario), strategy,
                                          workload::toString(scenario)))
                 .first;
    }
    return it->second;
}

core::RunResult
Runner::runWith(workload::ScenarioKind scenario,
                core::StrategyKind strategy,
                const core::EngineConfig& config)
{
    // Root-seed contract: runWith() used to run with whatever seed the
    // caller left in the config, silently diverging from the memoized
    // run() path whenever a call site forgot `cfg.seed = options().seed`.
    core::EngineConfig cfg = config;
    cfg.seed = options_.seed;
    core::Engine engine(cfg);
    return engine.run(trace(scenario), strategy,
                      workload::toString(scenario));
}

std::vector<core::RunResult>
Runner::runBatch(const std::vector<RunSpec>& specs)
{
    std::vector<core::RunResult> results;
    results.reserve(specs.size());
    for (const RunSpec& spec : specs) {
        const workload::ArrivalTrace* shared =
            spec.scenarioOverride ? nullptr : &trace(spec.scenario);
        results.push_back(executeSpec(spec, shared));
    }
    return results;
}

void
Runner::prewarm(bool includeUnprofiled)
{
    for (workload::ScenarioKind scenario : workload::kAllScenarios) {
        for (core::StrategyKind strategy : core::kAllStrategies) {
            run(scenario, strategy, true);
            if (includeUnprofiled)
                run(scenario, strategy, false);
        }
    }
}

core::RunResult
Runner::executeSpec(const RunSpec& spec,
                    const workload::ArrivalTrace* sharedTrace) const
{
    core::EngineConfig cfg = spec.config;
    cfg.seed = spec.seedOverride.value_or(options_.seed);
    core::Engine engine(cfg);
    const std::string label = spec.label.empty()
        ? std::string(workload::toString(spec.scenario))
        : spec.label;
    if (spec.scenarioOverride) {
        const workload::ArrivalTrace local =
            workload::generateScenario(*spec.scenarioOverride);
        return engine.run(local, spec.strategy, label);
    }
    return engine.run(*sharedTrace, spec.strategy, label);
}

} // namespace hcloud::exp
