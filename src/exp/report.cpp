#include "exp/report.hpp"

#include <cstdio>
#include <sstream>

namespace hcloud::exp {

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
printHeader(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printTable(const std::vector<std::string>& header,
           const std::vector<std::vector<std::string>>& rows)
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : "";
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cell.c_str());
        }
        std::printf("\n");
    };
    print_row(header);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows)
        print_row(row);
}

std::vector<std::string>
boxplotRow(const std::string& label, const sim::BoxplotSummary& b,
           int precision)
{
    return {label,
            fmt(b.p5, precision),
            fmt(b.p25, precision),
            fmt(b.mean, precision),
            fmt(b.p75, precision),
            fmt(b.p95, precision)};
}

void
printSeries(const std::string& label, const sim::StepSeries& series,
            double t0, double t1, std::size_t points, double valueScale)
{
    std::printf("%s:\n", label.c_str());
    for (const auto& p : series.resample(t0, t1, points)) {
        std::printf("  t=%7.1fs  %10.2f\n", p.t, p.v * valueScale);
    }
}

void
printClaim(const std::string& label, const std::string& paper,
           const std::string& measured)
{
    std::printf("%-46s paper %-12s measured %s\n", label.c_str(),
                paper.c_str(), measured.c_str());
}

} // namespace hcloud::exp
