#include "exp/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/report_json.hpp"
#include "obs/process_metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "runtime/thread_pool.hpp"

namespace hcloud::exp {

namespace {

void
printUsage(const char* prog, bool allowSweep = false)
{
    std::fprintf(stderr,
                 "usage: %s [loadScale] [seed] [threads] "
                 "[--json <path>] [--trace <path>] "
                 "[--timeline <path>] [--metrics-port <port>]%s\n",
                 prog,
                 allowSweep ? " [--seeds <n>] [--ci]" : "");
}

/**
 * Parse @p arg as a finite, strictly-positive double consuming the whole
 * token. Returns false (leaving @p out untouched) on any malformed or
 * out-of-range input — the callers treat that as a CLI error instead of
 * the old atof() behaviour of silently running with 0.0.
 */
bool
parsePositiveDouble(const char* arg, double& out)
{
    if (arg == nullptr || *arg == '\0')
        return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || errno == ERANGE)
        return false;
    if (!std::isfinite(value) || value <= 0.0)
        return false;
    out = value;
    return true;
}

/**
 * Parse @p arg as a base-10 u64 consuming the whole token. Rejects empty
 * tokens, signs (strtoull silently wraps "-1" to 2^64-1), trailing junk,
 * and out-of-range values.
 */
bool
parseU64(const char* arg, std::uint64_t& out)
{
    if (arg == nullptr || *arg == '\0' || *arg == '-' || *arg == '+')
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<std::uint64_t>(value);
    return true;
}

/** Report a malformed positional: stderr + usage + BenchCli error state. */
void
positionalError(BenchCli& cli, const char* prog, const char* what,
                const char* arg)
{
    cli.errorMessage = std::string(what) + ": '" + arg + "'";
    std::fprintf(stderr, "%s: %s\n", prog, cli.errorMessage.c_str());
    printUsage(prog);
    cli.parseError = true;
}

} // namespace

core::EngineConfig
BenchCli::engineConfig() const
{
    core::EngineConfig cfg;
    if (traceRequested)
        cfg.trace.mode = obs::TraceConfig::Mode::On;
    // When tracing will produce a file, stream each run through a TraceSink
    // part file derived from this stem so the on-disk trace is complete
    // even when a run records more events than the ring holds.
    const bool tracing = traceRequested || obs::envTraceEnabled();
    const std::string trace_path = effectiveTracePath();
    if (tracing && !trace_path.empty())
        cfg.trace.sinkStem = trace_path;
    // CI knob: shrink (or grow) the ring without recompiling. Consumed
    // here at the CLI edge only, so the library stays env-independent.
    if (const char* ring = std::getenv("HCLOUD_TRACE_RING")) {
        std::uint64_t capacity = 0;
        if (parseU64(ring, capacity) && capacity > 0)
            cfg.trace.ringCapacity = static_cast<std::size_t>(capacity);
    }
    // Timeline sampling mirrors the trace wiring: the flag forces it on,
    // a named path becomes the per-run sink stem, and the cadence/ring
    // env knobs are consumed here at the CLI edge only.
    if (timelineRequested)
        cfg.timeline.mode = obs::TimelineConfig::Mode::On;
    const bool sampling = timelineRequested || obs::envTimelineEnabled();
    const std::string timeline_path = effectiveTimelinePath();
    if (sampling && !timeline_path.empty())
        cfg.timeline.sinkStem = timeline_path;
    cfg.timeline.cadence = obs::envTimelineCadence(cfg.timeline.cadence);
    if (const char* ring = std::getenv("HCLOUD_TIMELINE_RING")) {
        std::uint64_t capacity = 0;
        if (parseU64(ring, capacity) && capacity > 0)
            cfg.timeline.ringCapacity = static_cast<std::size_t>(capacity);
    }
    return cfg;
}

bool
BenchCli::wantsArtifacts() const
{
    return !jsonPath.empty() || traceRequested || obs::envTraceEnabled() ||
        timelineRequested || obs::envTimelineEnabled();
}

std::string
BenchCli::effectiveTracePath() const
{
    if (!tracePath.empty())
        return tracePath;
    return obs::envTracePath();
}

std::string
BenchCli::effectiveTimelinePath() const
{
    if (!timelinePath.empty())
        return timelinePath;
    return obs::envTimelinePath();
}

std::optional<std::uint16_t>
BenchCli::effectiveMetricsPort() const
{
    if (metricsRequested)
        return metricsPort;
    if (const char* env = std::getenv("HCLOUD_METRICS_PORT")) {
        std::uint64_t port = 0;
        if (parseU64(env, port) && port <= 65535)
            return static_cast<std::uint16_t>(port);
    }
    return std::nullopt;
}

BenchCli
parseBenchCli(int argc, char** argv, bool allowSweep)
{
    BenchCli cli;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (allowSweep && std::strcmp(arg, "--ci") == 0) {
            cli.ciRequested = true;
            continue;
        }
        if (allowSweep && std::strcmp(arg, "--seeds") == 0) {
            if (i + 1 >= argc) {
                cli.errorMessage = "--seeds requires a count";
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             cli.errorMessage.c_str());
                printUsage(argv[0], allowSweep);
                cli.parseError = true;
                return cli;
            }
            std::uint64_t seeds = 0;
            if (!parseU64(argv[i + 1], seeds) || seeds == 0) {
                positionalError(cli, argv[0],
                                "--seeds must be a positive integer",
                                argv[i + 1]);
                return cli;
            }
            cli.seeds = static_cast<std::size_t>(seeds);
            ++i;
            continue;
        }
        if (std::strcmp(arg, "--json") == 0 ||
            std::strcmp(arg, "--trace") == 0 ||
            std::strcmp(arg, "--timeline") == 0) {
            if (i + 1 >= argc) {
                cli.errorMessage = std::string(arg) + " requires a path";
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             cli.errorMessage.c_str());
                printUsage(argv[0]);
                cli.parseError = true;
                return cli;
            }
            if (arg[2] == 'j') {
                cli.jsonPath = argv[++i];
            } else if (std::strcmp(arg, "--trace") == 0) {
                cli.tracePath = argv[++i];
                cli.traceRequested = true;
            } else {
                cli.timelinePath = argv[++i];
                cli.timelineRequested = true;
            }
            continue;
        }
        if (std::strcmp(arg, "--metrics-port") == 0) {
            if (i + 1 >= argc) {
                cli.errorMessage = "--metrics-port requires a port";
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             cli.errorMessage.c_str());
                printUsage(argv[0]);
                cli.parseError = true;
                return cli;
            }
            std::uint64_t port = 0;
            if (!parseU64(argv[i + 1], port) || port > 65535) {
                positionalError(cli, argv[0],
                                "--metrics-port must be 0..65535",
                                argv[i + 1]);
                return cli;
            }
            cli.metricsPort = static_cast<std::uint16_t>(port);
            cli.metricsRequested = true;
            ++i;
            continue;
        }
        if (arg[0] == '-' && arg[1] == '-') {
            cli.errorMessage = std::string("unknown flag ") + arg;
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         cli.errorMessage.c_str());
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
        switch (positional++) {
        case 0:
            if (!parsePositiveDouble(arg, cli.options.loadScale)) {
                positionalError(cli, argv[0],
                                "loadScale must be a finite number > 0",
                                arg);
                return cli;
            }
            break;
        case 1: {
            std::uint64_t seed = 0;
            if (!parseU64(arg, seed)) {
                positionalError(cli, argv[0],
                                "seed must be an unsigned 64-bit integer",
                                arg);
                return cli;
            }
            cli.options.seed = seed;
            break;
        }
        case 2: {
            std::uint64_t threads = 0;
            if (!parseU64(arg, threads)) {
                positionalError(
                    cli, argv[0],
                    "threads must be an unsigned integer", arg);
                return cli;
            }
            cli.options.threads = static_cast<std::size_t>(threads);
            break;
        }
        default:
            cli.errorMessage = "too many arguments";
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         cli.errorMessage.c_str());
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
    }
    // Validate the HCLOUD_THREADS knob here at the edge: the bench is
    // about to hand options.threads == 0 to a ThreadPool, whose
    // defaultThreadCount() throws on a malformed value. Rejecting it as
    // a CLI error keeps the failure structured and before any work.
    if (cli.options.threads == 0) {
        if (const char* env = std::getenv("HCLOUD_THREADS")) {
            runtime::ThreadCountError error;
            if (!runtime::parseThreadCount(env, &error)) {
                cli.errorMessage = "HCLOUD_THREADS=\"" + error.value +
                    "\": " + error.reason;
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             cli.errorMessage.c_str());
                cli.parseError = true;
                return cli;
            }
        }
    }
    return cli;
}

bool
writeBenchArtifacts(const BenchCli& cli, const std::string& title,
                    const Runner& runner,
                    const std::vector<SweepResult>& sweeps)
{
    bool ok = true;
    if (!cli.jsonPath.empty()) {
        if (writeJsonReport(cli.jsonPath, title, runner, sweeps)) {
            std::printf("wrote JSON report: %s\n", cli.jsonPath.c_str());
        } else {
            std::fprintf(stderr, "failed to write JSON report: %s\n",
                         cli.jsonPath.c_str());
            ok = false;
        }
    }
    const std::string trace_path = cli.effectiveTracePath();
    const bool tracing = cli.traceRequested || obs::envTraceEnabled();
    if (tracing && !trace_path.empty()) {
        if (writeTraceJsonl(trace_path, runner, /*removeParts=*/true)) {
            std::printf("wrote trace JSONL: %s\n", trace_path.c_str());
        } else {
            std::fprintf(stderr, "failed to write trace JSONL: %s\n",
                         trace_path.c_str());
            ok = false;
        }
    }
    const std::string timeline_path = cli.effectiveTimelinePath();
    const bool sampling =
        cli.timelineRequested || obs::envTimelineEnabled();
    if (sampling && !timeline_path.empty()) {
        if (writeTimelineJsonl(timeline_path, runner,
                               /*removeParts=*/true)) {
            std::printf("wrote timeline JSONL: %s\n",
                        timeline_path.c_str());
        } else {
            std::fprintf(stderr, "failed to write timeline JSONL: %s\n",
                         timeline_path.c_str());
            ok = false;
        }
    }
    return ok;
}

ScopedMetricsServer::ScopedMetricsServer(const BenchCli& cli)
{
    const std::optional<std::uint16_t> port = cli.effectiveMetricsPort();
    if (!port)
        return;
    // Scrapers poll this counter for progress; registering it up front
    // makes the very first scrape see it at 0 instead of a missing
    // series (publication only starts when the first run finishes).
    obs::ProcessMetrics::instance().counter(
        "hcloud_run_completed_total",
        "Engine runs completed by experiment runners");
    std::string error;
    if (!server_.start(*port, &error)) {
        std::fprintf(stderr, "metrics server failed to start: %s\n",
                     error.c_str());
        failed_ = true;
        return;
    }
    std::printf("metrics: serving http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(server_.boundPort()));
    // The port line is how scripts discover an ephemeral port; flush past
    // stdio's block buffering so a pipe reader sees it before the sweep.
    std::fflush(stdout);
}

ScopedMetricsServer::~ScopedMetricsServer()
{
    server_.stop();
}

} // namespace hcloud::exp
