#include "exp/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/report_json.hpp"
#include "obs/tracer.hpp"

namespace hcloud::exp {

namespace {

void
printUsage(const char* prog)
{
    std::fprintf(stderr,
                 "usage: %s [loadScale] [seed] [threads] "
                 "[--json <path>] [--trace <path>]\n",
                 prog);
}

/**
 * Parse @p arg as a finite, strictly-positive double consuming the whole
 * token. Returns false (leaving @p out untouched) on any malformed or
 * out-of-range input — the callers treat that as a CLI error instead of
 * the old atof() behaviour of silently running with 0.0.
 */
bool
parsePositiveDouble(const char* arg, double& out)
{
    if (arg == nullptr || *arg == '\0')
        return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || errno == ERANGE)
        return false;
    if (!std::isfinite(value) || value <= 0.0)
        return false;
    out = value;
    return true;
}

/**
 * Parse @p arg as a base-10 u64 consuming the whole token. Rejects empty
 * tokens, signs (strtoull silently wraps "-1" to 2^64-1), trailing junk,
 * and out-of-range values.
 */
bool
parseU64(const char* arg, std::uint64_t& out)
{
    if (arg == nullptr || *arg == '\0' || *arg == '-' || *arg == '+')
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<std::uint64_t>(value);
    return true;
}

/** Report a malformed positional: stderr + usage + BenchCli error state. */
void
positionalError(BenchCli& cli, const char* prog, const char* what,
                const char* arg)
{
    cli.errorMessage = std::string(what) + ": '" + arg + "'";
    std::fprintf(stderr, "%s: %s\n", prog, cli.errorMessage.c_str());
    printUsage(prog);
    cli.parseError = true;
}

} // namespace

core::EngineConfig
BenchCli::engineConfig() const
{
    core::EngineConfig cfg;
    if (traceRequested)
        cfg.trace.mode = obs::TraceConfig::Mode::On;
    // When tracing will produce a file, stream each run through a TraceSink
    // part file derived from this stem so the on-disk trace is complete
    // even when a run records more events than the ring holds.
    const bool tracing = traceRequested || obs::envTraceEnabled();
    const std::string trace_path = effectiveTracePath();
    if (tracing && !trace_path.empty())
        cfg.trace.sinkStem = trace_path;
    // CI knob: shrink (or grow) the ring without recompiling. Consumed
    // here at the CLI edge only, so the library stays env-independent.
    if (const char* ring = std::getenv("HCLOUD_TRACE_RING")) {
        std::uint64_t capacity = 0;
        if (parseU64(ring, capacity) && capacity > 0)
            cfg.trace.ringCapacity = static_cast<std::size_t>(capacity);
    }
    return cfg;
}

bool
BenchCli::wantsArtifacts() const
{
    return !jsonPath.empty() || traceRequested || obs::envTraceEnabled();
}

std::string
BenchCli::effectiveTracePath() const
{
    if (!tracePath.empty())
        return tracePath;
    return obs::envTracePath();
}

BenchCli
parseBenchCli(int argc, char** argv)
{
    BenchCli cli;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--json") == 0 ||
            std::strcmp(arg, "--trace") == 0) {
            if (i + 1 >= argc) {
                cli.errorMessage = std::string(arg) + " requires a path";
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             cli.errorMessage.c_str());
                printUsage(argv[0]);
                cli.parseError = true;
                return cli;
            }
            if (arg[2] == 'j') {
                cli.jsonPath = argv[++i];
            } else {
                cli.tracePath = argv[++i];
                cli.traceRequested = true;
            }
            continue;
        }
        if (arg[0] == '-' && arg[1] == '-') {
            cli.errorMessage = std::string("unknown flag ") + arg;
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         cli.errorMessage.c_str());
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
        switch (positional++) {
        case 0:
            if (!parsePositiveDouble(arg, cli.options.loadScale)) {
                positionalError(cli, argv[0],
                                "loadScale must be a finite number > 0",
                                arg);
                return cli;
            }
            break;
        case 1: {
            std::uint64_t seed = 0;
            if (!parseU64(arg, seed)) {
                positionalError(cli, argv[0],
                                "seed must be an unsigned 64-bit integer",
                                arg);
                return cli;
            }
            cli.options.seed = seed;
            break;
        }
        case 2: {
            std::uint64_t threads = 0;
            if (!parseU64(arg, threads)) {
                positionalError(
                    cli, argv[0],
                    "threads must be an unsigned integer", arg);
                return cli;
            }
            cli.options.threads = static_cast<std::size_t>(threads);
            break;
        }
        default:
            cli.errorMessage = "too many arguments";
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         cli.errorMessage.c_str());
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
    }
    return cli;
}

bool
writeBenchArtifacts(const BenchCli& cli, const std::string& title,
                    const Runner& runner)
{
    bool ok = true;
    if (!cli.jsonPath.empty()) {
        if (writeJsonReport(cli.jsonPath, title, runner)) {
            std::printf("wrote JSON report: %s\n", cli.jsonPath.c_str());
        } else {
            std::fprintf(stderr, "failed to write JSON report: %s\n",
                         cli.jsonPath.c_str());
            ok = false;
        }
    }
    const std::string trace_path = cli.effectiveTracePath();
    const bool tracing = cli.traceRequested || obs::envTraceEnabled();
    if (tracing && !trace_path.empty()) {
        if (writeTraceJsonl(trace_path, runner, /*removeParts=*/true)) {
            std::printf("wrote trace JSONL: %s\n", trace_path.c_str());
        } else {
            std::fprintf(stderr, "failed to write trace JSONL: %s\n",
                         trace_path.c_str());
            ok = false;
        }
    }
    return ok;
}

} // namespace hcloud::exp
