#include "exp/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/report_json.hpp"
#include "obs/tracer.hpp"

namespace hcloud::exp {

namespace {

void
printUsage(const char* prog)
{
    std::fprintf(stderr,
                 "usage: %s [loadScale] [seed] [threads] "
                 "[--json <path>] [--trace <path>]\n",
                 prog);
}

} // namespace

core::EngineConfig
BenchCli::engineConfig() const
{
    core::EngineConfig cfg;
    if (traceRequested)
        cfg.trace.mode = obs::TraceConfig::Mode::On;
    return cfg;
}

bool
BenchCli::wantsArtifacts() const
{
    return !jsonPath.empty() || traceRequested || obs::envTraceEnabled();
}

std::string
BenchCli::effectiveTracePath() const
{
    if (!tracePath.empty())
        return tracePath;
    return obs::envTracePath();
}

BenchCli
parseBenchCli(int argc, char** argv)
{
    BenchCli cli;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--json") == 0 ||
            std::strcmp(arg, "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires a path\n", argv[0],
                             arg);
                printUsage(argv[0]);
                cli.parseError = true;
                return cli;
            }
            if (arg[2] == 'j') {
                cli.jsonPath = argv[++i];
            } else {
                cli.tracePath = argv[++i];
                cli.traceRequested = true;
            }
            continue;
        }
        if (arg[0] == '-' && arg[1] == '-') {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg);
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
        switch (positional++) {
        case 0:
            cli.options.loadScale = std::atof(arg);
            break;
        case 1:
            cli.options.seed = std::strtoull(arg, nullptr, 10);
            break;
        case 2:
            cli.options.threads = static_cast<std::size_t>(
                std::strtoull(arg, nullptr, 10));
            break;
        default:
            std::fprintf(stderr, "%s: too many arguments\n", argv[0]);
            printUsage(argv[0]);
            cli.parseError = true;
            return cli;
        }
    }
    return cli;
}

bool
writeBenchArtifacts(const BenchCli& cli, const std::string& title,
                    const Runner& runner)
{
    bool ok = true;
    if (!cli.jsonPath.empty()) {
        if (writeJsonReport(cli.jsonPath, title, runner)) {
            std::printf("wrote JSON report: %s\n", cli.jsonPath.c_str());
        } else {
            std::fprintf(stderr, "failed to write JSON report: %s\n",
                         cli.jsonPath.c_str());
            ok = false;
        }
    }
    const std::string trace_path = cli.effectiveTracePath();
    const bool tracing = cli.traceRequested || obs::envTraceEnabled();
    if (tracing && !trace_path.empty()) {
        if (writeTraceJsonl(trace_path, runner)) {
            std::printf("wrote trace JSONL: %s\n", trace_path.c_str());
        } else {
            std::fprintf(stderr, "failed to write trace JSONL: %s\n",
                         trace_path.c_str());
            ok = false;
        }
    }
    return ok;
}

} // namespace hcloud::exp
